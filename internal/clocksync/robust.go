package clocksync

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"hclocksync/internal/clock"
	"hclocksync/internal/mpi"
	"hclocksync/internal/stats"
)

// Byzantine-robust synchronization and the drift watchdog.
//
// HCA3FT survives crash-stop ranks and lossy links, but still trusts every
// timestamp a reference serves and every model it learns: one rank replying
// with biased readings (Byzantine), or one clock stepping after the sync,
// silently corrupts a whole subtree. HCA3Robust hardens the same binomial
// tree on three changes:
//
//  1. Server quorums. Instead of learning from its single tree parent, a
//     client learns an independent drift model against q = 2F+1 already-
//     synchronized servers and aggregates them by element-wise median, so
//     up to F adversarial servers per quorum cannot steer the fit (the
//     f-out-of-2f+1 argument; see DESIGN.md). Early tree rounds have fewer
//     than 2F+1 synchronized ranks; those quorums are root-anchored — they
//     shrink to an odd size that always contains the rank closest to the
//     root, which is honest by construction (the root anchors global time
//     and the fault model never targets it).
//
//  2. Robust estimation. Every per-server model is fitted with Theil–Sen
//     (FitOffsetSamplesRobust) over median/MAD-filtered exchanges, so a
//     clock step mid-window or biased timestamp tail below the ~29%
//     breakdown point cannot steer a single session either.
//
//  3. The drift watchdog. Synchronization only fixes the past: a clock
//     step or frequency excursion after the tree sync invalidates the
//     model with no one noticing. The watchdog runs probe rounds through
//     the measurement phase: each rank measures its offset against a few
//     successor ranks using the global clocks, takes the median, and — when
//     its own divergence exceeds Threshold — re-learns a correction from
//     full-length robust sessions in the next round and stacks it on its
//     global clock. Detection time and resync counts are reported through
//     RankSync.
type HCA3Robust struct {
	// NFitpoints is the number of offset exchanges per (server, client)
	// session (default 30).
	NFitpoints int
	// F is the number of Byzantine servers each quorum tolerates; quorums
	// have 2F+1 servers where the tree provides them (default 1).
	F    int
	Opts FTOpts
	// Watch configures the drift watchdog; Watch.Rounds = 0 disables it.
	Watch WatchOpts
}

// WatchOpts tunes the drift watchdog. The zero value disables it; setting
// Rounds > 0 enables it with defaults for the rest.
type WatchOpts struct {
	// Rounds is the number of probe rounds (0 = no watchdog).
	Rounds int
	// Interval is the global-clock time between probe rounds (default
	// 40 ms). A divergence detected in round t is corrected in round t+1,
	// so the worst-case correction latency is ~2·Interval.
	Interval float64
	// Delay is the global-clock delay between the root's schedule
	// broadcast and round 0 (default 50 ms).
	Delay float64
	// ProbeN is the number of exchanges per probe session (default 5).
	ProbeN int
	// Servers is how many successor ranks each rank probes per round
	// (default 3, clamped to the communicator size minus one). With 2f+1
	// probed servers, up to f Byzantine servers cannot fake or mask a
	// divergence.
	Servers int
	// Threshold is the divergence that triggers a resync (default 50 µs).
	Threshold float64
	// SlopeFloor zeroes a resync correction's fitted slope when its
	// magnitude is below this value (default 1e-4). A step has no rate
	// component — the fitted slope over a short probe window is pure
	// noise that would explode under extrapolation — while a real
	// frequency excursion of hundreds of ppm clears the floor.
	SlopeFloor float64
}

func (w WatchOpts) withDefaults() WatchOpts {
	if w.Interval <= 0 {
		w.Interval = 0.04
	}
	if w.Delay <= 0 {
		w.Delay = 0.05
	}
	if w.ProbeN <= 0 {
		w.ProbeN = 5
	}
	if w.Servers <= 0 {
		w.Servers = 3
	}
	if w.Threshold <= 0 {
		w.Threshold = 50e-6
	}
	if w.SlopeFloor <= 0 {
		w.SlopeFloor = 1e-4
	}
	return w
}

// watchSeqStride is the sequence-number namespace width per watchdog round:
// round t's sessions use SeqBase (t+1)·watchSeqStride, so stale packets from
// any earlier session between the same pair are unmistakable.
const watchSeqStride = 1 << 20

// Name returns the paper-style label.
func (h HCA3Robust) Name() string {
	n := h.NFitpoints
	if n <= 0 {
		n = 30
	}
	f := h.F
	if f <= 0 {
		f = 1
	}
	return fmt.Sprintf("hca3robust/f%d/%d", f, n)
}

// Sync implements Algorithm, discarding the per-rank report.
func (h HCA3Robust) Sync(comm *mpi.Comm, clk clock.Clock) clock.Clock {
	g, _ := h.SyncFT(comm, clk)
	return g
}

// quorumServers returns the ordered server quorum for a client whose
// primary reference is ref, when the synchronized ranks are the multiples
// of stride in [0, maxPower). The quorum is the primary first, then the
// remaining candidates by (tree depth, distance from the primary); its size
// is min(2F+1, available) reduced to odd by dropping the deepest member, so
// a median over it is never a two-way mean and small quorums anchor to the
// root side of the tree.
func quorumServers(ref, stride, maxPower, f int) []int {
	avail := maxPower / stride
	q := 2*f + 1
	if q > avail {
		q = avail
	}
	cands := make([]int, 0, avail)
	for s := 0; s < maxPower; s += stride {
		if s != ref {
			cands = append(cands, s)
		}
	}
	depth := func(r int) int { return bits.OnesCount(uint(r)) }
	sort.Slice(cands, func(a, b int) bool {
		da, db := depth(cands[a]), depth(cands[b])
		if da != db {
			return da < db
		}
		return (cands[a]-ref+maxPower)%maxPower < (cands[b]-ref+maxPower)%maxPower
	})
	sel := append([]int{ref}, cands[:q-1]...)
	if len(sel)%2 == 0 {
		// Drop the deepest (then farthest) member to make the count odd.
		worst := 0
		for i := 1; i < len(sel); i++ {
			dw, di := depth(sel[worst]), depth(sel[i])
			if di > dw || (di == dw && sel[i] > sel[worst]) {
				worst = i
			}
		}
		sel = append(sel[:worst], sel[worst+1:]...)
	}
	return sel
}

// anchoredFit is one per-server drift model together with the median
// sample timestamp of the session it was fitted on.
type anchoredFit struct {
	lm    clock.LinearModel
	pivot float64
}

// aggregateFits combines per-server fits by median AT A PIVOT: the
// aggregate slope is the median slope and the aggregate's prediction at the
// shared pivot timestamp is the median of the fits' predictions there. An
// element-wise median of raw intercepts would be meaningless — local clock
// readings sit ~1e4 s from zero (boot-time offsets), so every intercept
// carries a −slope·reading cross-term that dwarfs the offsets being
// estimated, and pairing one fit's slope with another's intercept orphans
// that term. Anchoring at the pivot keeps the aggregate inside the honest
// cluster where it matters: at the measurement window. Up to half of
// len(fits)−1 adversarial fits cannot steer either median.
func aggregateFits(fits []anchoredFit) (clock.LinearModel, float64) {
	slopes := make([]float64, len(fits))
	pivots := make([]float64, len(fits))
	for i, f := range fits {
		slopes[i] = f.lm.Slope
		pivots[i] = f.pivot
	}
	pivot := stats.Median(pivots)
	offs := make([]float64, len(fits))
	for i, f := range fits {
		offs[i] = f.lm.Predict(pivot)
	}
	slope := stats.Median(slopes)
	off := stats.Median(offs)
	return clock.LinearModel{Slope: slope, Intercept: off - slope*pivot}, pivot
}

// samplePivot returns the median timestamp of a session's samples.
func samplePivot(ss []ClockOffset) float64 {
	ts := make([]float64, len(ss))
	for i, s := range ss {
		ts[i] = s.Timestamp
	}
	return stats.Median(ts)
}

// learnQuorum runs the client side of one tree round: a full robust session
// against every server in the quorum, aggregated by median. It returns the
// aggregate (zero with ok=false when no server yielded a usable fit).
func learnQuorum(s *mpi.Comm, clk clock.Clock, servers []int, nfit int, o FTOpts,
	rep *RankSync) (clock.LinearModel, bool) {
	var fits []anchoredFit
	for _, srv := range servers {
		ss, lost := ftSample(s, clk, srv, nfit, o)
		rep.Samples += len(ss)
		rep.Lost += lost
		if len(ss) == 0 {
			continue
		}
		lm, err := FitOffsetSamplesRobust(ss)
		if err != nil {
			continue
		}
		if len(ss) < o.MinSamples {
			// Too few samples to trust a fitted slope; offset-only.
			var mean float64
			for i, smp := range ss {
				mean += (smp.Offset - mean) / float64(i+1)
			}
			lm = clock.LinearModel{Intercept: mean}
			rep.Degraded = true
		}
		fits = append(fits, anchoredFit{lm: lm, pivot: samplePivot(ss)})
	}
	if len(fits) == 0 {
		return clock.LinearModel{}, false
	}
	lm, _ := aggregateFits(fits)
	return lm, true
}

// SyncFT synchronizes the survivors of comm with quorum-robust tree
// learning, runs the drift watchdog when configured, and reports each
// rank's sync quality.
func (h HCA3Robust) SyncFT(comm *mpi.Comm, clk clock.Clock) (clock.Clock, RankSync) {
	o := h.Opts.withDefaults()
	o.Robust = true
	f := h.F
	if f <= 0 {
		f = 1
	}
	nfit := h.NFitpoints
	if nfit <= 0 {
		nfit = 30
	}
	rep := RankSync{Rank: comm.WorldRank(comm.Rank()), Ref: -1}
	s := comm.ShrinkSurvivors()
	if s == nil {
		return clk, rep
	}
	rep.Alive = true
	nprocs := s.Size()
	r := s.Rank()
	nrounds := log2floor(nprocs)
	maxPower := 1 << nrounds
	myClk := clk

	// First-contact patience: a partner can be busy with earlier sessions of
	// its own quorum in every earlier round, plus the root serializes one
	// session per client. Bound both.
	q := 2*f + 1
	minConnect := int(math.Ceil(float64((nrounds+1)*q+nprocs) * float64(nfit) * (o.Gap + 2*o.Timeout) / o.Timeout))
	if o.Connect < minConnect {
		o.Connect = minConnect
	}

	// runTree executes one tree round: clients learn from their quorum,
	// synchronized ranks serve every quorum that includes them, in global
	// (client, quorum-index) order so pairs meet roughly in sequence.
	serveRound := func(clients []int, serversOf func(c int) []int) {
		for _, c := range clients {
			if c == r {
				srv := serversOf(c)
				if lm, ok := learnQuorum(s, clk, srv, nfit, o, &rep); ok {
					rep.Ref = s.WorldRank(srv[0])
					myClk = clock.New(clk, lm)
				} else {
					rep.Degraded = true
				}
				continue
			}
			for _, srv := range serversOf(c) {
				if srv == r {
					ftServe(s, myClk, c, o)
				}
			}
		}
	}

	// Step 1: ranks 0 … maxPower−1, top of the binomial tree first.
	for i := nrounds; i >= 1; i-- {
		running := 1 << i
		next := 1 << (i - 1)
		var clients []int
		for c := next; c < maxPower; c += running {
			clients = append(clients, c)
		}
		if r < maxPower {
			serveRound(clients, func(c int) []int {
				return quorumServers(c-next, running, maxPower, f)
			})
		}
	}
	// Step 2: remainder ranks learn from quorums over the whole synchronized
	// power-of-two block.
	if nprocs > maxPower {
		var clients []int
		for c := maxPower; c < nprocs; c++ {
			clients = append(clients, c)
		}
		serveRound(clients, func(c int) []int {
			return quorumServers(c-maxPower, 1, maxPower, f)
		})
	}

	if h.Watch.Rounds > 0 && nprocs >= 3 {
		myClk = h.runWatchdog(s, myClk, o, nfit, &rep)
	}
	return myClk, rep
}

// watchAction is one session of a watchdog round as seen by one rank:
// either serving a probing client or probing one of its own servers.
type watchAction struct {
	client, idx int // global ordering key: (probing client, its server index)
	peer        int // the other side
	serve       bool
}

// runWatchdog executes the probe/resync rounds on the survivor
// communicator. Rank 0 serves but never probes or resyncs: it anchors the
// global time base, and resyncing the anchor toward a possibly-faulty
// majority would redefine truth rather than repair a clock.
func (h HCA3Robust) runWatchdog(s *mpi.Comm, myClk clock.Clock, o FTOpts, nfit int,
	rep *RankSync) clock.Clock {
	w := h.Watch.withDefaults()
	n := s.Size()
	r := s.Rank()
	p := s.Proc()
	ns := w.Servers
	if ns > n-1 {
		ns = n - 1
	}

	// The root announces the schedule: round t starts when each rank's
	// global clock reads start + t·Interval. Global clocks agree to
	// microseconds after the tree sync, so rounds align across ranks
	// without any rank observing true time.
	start := s.BcastF64(myClk.Time()+w.Delay, 0)

	var actions []watchAction
	for j := 0; j < ns; j++ {
		if r != 0 {
			actions = append(actions, watchAction{client: r, idx: j, peer: (r + 1 + j) % n})
		}
		if c := (r - 1 - j + 2*n) % n; c != 0 && c != r {
			actions = append(actions, watchAction{client: c, idx: j, peer: c, serve: true})
		}
	}
	sort.Slice(actions, func(a, b int) bool {
		if actions[a].client != actions[b].client {
			return actions[a].client < actions[b].client
		}
		return actions[a].idx < actions[b].idx
	})

	resyncPending := false
	for round := 0; round < w.Rounds; round++ {
		waitUntilReading(p, myClk, start+float64(round)*w.Interval)
		po := o
		po.SeqBase = (round + 1) * watchSeqStride
		po.Connect = 50
		po.Attempts = 3
		probeN := w.ProbeN
		if resyncPending {
			probeN = nfit
		}
		var medians []float64
		var fits []anchoredFit
		for _, a := range actions {
			if a.serve {
				ftServe(s, myClk, a.peer, po)
				continue
			}
			ss, _ := ftSample(s, myClk, a.peer, probeN, po)
			if len(ss) == 0 {
				continue
			}
			offs := make([]float64, len(ss))
			for i, smp := range ss {
				offs[i] = smp.Offset
			}
			medians = append(medians, stats.Median(offs))
			if resyncPending {
				if lm, err := FitOffsetSamplesRobust(ss); err == nil {
					fits = append(fits, anchoredFit{lm: lm, pivot: samplePivot(ss)})
				}
			}
		}
		if resyncPending && len(fits) > 0 {
			lm, pivot := aggregateFits(fits)
			if math.Abs(lm.Slope) < w.SlopeFloor {
				// A step has no rate component; zero the noise slope while
				// preserving the aggregate's prediction at the probe window.
				lm = clock.LinearModel{Intercept: lm.Predict(pivot)}
			}
			myClk = clock.New(myClk, lm)
			rep.Resyncs++
			resyncPending = false
			continue
		}
		if len(medians) > 0 {
			if div := stats.Median(medians); math.Abs(div) > w.Threshold {
				if rep.DetectedAt == 0 {
					rep.DetectedAt = p.TrueNow()
				}
				resyncPending = true
			}
		}
	}
	return myClk
}

// waitUntilReading blocks rank p until clock c reads target, tolerating
// clocks whose first crossing of the target is already in the past (a
// backward step can re-expose readings, and a fast clock may simply be past
// it) — exactly how an OS absolute-deadline sleep treats past deadlines.
func waitUntilReading(p *mpi.Proc, c clock.Clock, target float64) {
	if tw := c.TrueWhen(target); tw > p.TrueNow() {
		p.WaitUntilTrue(tw)
	}
}
