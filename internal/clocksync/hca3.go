package clocksync

import (
	"hclocksync/internal/clock"
	"hclocksync/internal/mpi"
)

// HCA3 is the paper's new clock synchronization algorithm (Alg. 1). Like
// HCA2 it needs only O(log p) rounds, but instead of learning models bottom
// up and merging them at the root, it pushes the reference time down a
// binomial tree: a rank that has already synchronized emulates the global
// clock when serving as a reference in later rounds (the PulseSync idea
// adapted to MPI). Every rank's final model is therefore a direct, single
// linear model against the (emulated) root clock — no merging error.
type HCA3 struct {
	Params Params
}

// Name returns the paper-style label, e.g.
// "hca3/recompute intercept/1000/SKaMPI-Offset/100".
func (h HCA3) Name() string { return h.Params.withDefaults().label("hca3") }

// Sync implements Alg. 1.
func (h HCA3) Sync(comm *mpi.Comm, clk clock.Clock) clock.Clock {
	nprocs := comm.Size()
	r := comm.Rank()
	nrounds := log2floor(nprocs)
	maxPower := 1 << nrounds

	myClk := clk // dummy global clock (identity model)

	// Step 1: ranks 0 … maxPower−1, top of the binomial tree first.
	for i := nrounds; i >= 1; i-- {
		if r >= maxPower {
			break
		}
		running := 1 << i
		next := 1 << (i - 1)
		switch {
		case r%running == 0:
			// Reference for this round: emulate the global clock.
			other := r + next
			LearnClockModel(comm, h.Params, r, other, myClk)
		case r%running == next:
			other := r - next
			lm := LearnClockModel(comm, h.Params, other, r, myClk)
			myClk = clock.New(clk, lm)
		}
	}

	// Step 2: the remainder ranks maxPower … nprocs−1 synchronize against
	// their already-synchronized partner r − maxPower.
	if r >= maxPower {
		other := r - maxPower
		lm := LearnClockModel(comm, h.Params, other, r, myClk)
		myClk = clock.New(clk, lm)
	} else if r < nprocs-maxPower {
		other := r + maxPower
		LearnClockModel(comm, h.Params, r, other, myClk)
	}
	return myClk
}

// log2floor returns floor(log2(n)) for n >= 1.
func log2floor(n int) int {
	k := 0
	for 1<<(k+1) <= n {
		k++
	}
	return k
}
