package clocksync

// Checkpoint support for synchronized clocks. A synced clock is a stack of
// linear drift models over the rank's local hardware clock (the decorator
// nesting of paper §IV-B); the models are plain numbers, so capturing the
// stack and rebuilding it over a fresh Local in a resumed process yields a
// clock whose every reading is bit-identical — the nesting order is
// preserved rather than collapsed, because Collapse's merged model is
// mathematically but not floating-point-identical to the nested stack.

import "hclocksync/internal/clock"

// SyncState is the serializable state of one rank's synchronized clock: the
// drift models from innermost (closest to the hardware clock) to outermost.
//
//synclint:snapshot
type SyncState struct {
	Models []clock.LinearModel
}

// CaptureClock captures the model stack of a synchronized clock produced by
// any of the Algorithms. The clock must be a (possibly empty) stack of
// GlobalClockLM decorators over a *clock.Local.
func CaptureClock(c clock.Clock) SyncState {
	var st SyncState
	for {
		g, ok := c.(*clock.GlobalClockLM)
		if !ok {
			return st
		}
		st.Models = append([]clock.LinearModel{g.Model}, st.Models...)
		c = g.Base
	}
}

// Rebuild reconstructs the synchronized clock over base, reproducing the
// captured nesting exactly.
func (st SyncState) Rebuild(base clock.Clock) clock.Clock {
	c := base
	for _, m := range st.Models {
		c = clock.New(c, m)
	}
	return c
}
