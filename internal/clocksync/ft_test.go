package clocksync

import (
	"math"
	"sync"
	"testing"

	"hclocksync/internal/clock"
	"hclocksync/internal/cluster"
	"hclocksync/internal/faults"
	"hclocksync/internal/mpi"
)

func TestFitOffsetSamplesDegenerate(t *testing.T) {
	for name, fit := range map[string]func([]ClockOffset) (clock.LinearModel, error){
		"ls": FitOffsetSamples, "robust": FitOffsetSamplesRobust,
	} {
		if _, err := fit(nil); err != ErrNoSamples {
			t.Errorf("%s: empty sample set: err = %v, want ErrNoSamples", name, err)
		}
		lm, err := fit([]ClockOffset{{Timestamp: 5, Offset: 2e-6}})
		if err != nil || lm.Slope != 0 || lm.Intercept != 2e-6 {
			t.Errorf("%s: one sample: got %+v, %v; want horizontal through 2e-6", name, lm, err)
		}
		// Non-finite samples are dropped, not propagated.
		lm, err = fit([]ClockOffset{
			{Timestamp: math.NaN(), Offset: 1},
			{Timestamp: 1, Offset: math.Inf(1)},
			{Timestamp: 2, Offset: 3e-6},
		})
		if err != nil || lm.Slope != 0 || lm.Intercept != 3e-6 {
			t.Errorf("%s: filtered fit: got %+v, %v", name, lm, err)
		}
		if _, err := fit([]ClockOffset{{Timestamp: math.NaN(), Offset: math.NaN()}}); err != ErrNoSamples {
			t.Errorf("%s: all-NaN sample set: err = %v, want ErrNoSamples", name, err)
		}
	}
	// Identical timestamps make the regressions singular; both fall back to
	// a horizontal line (least squares through the mean, Theil–Sen through
	// the median).
	lm, err := FitOffsetSamples([]ClockOffset{{Timestamp: 1, Offset: 2}, {Timestamp: 1, Offset: 4}})
	if err != nil || lm.Slope != 0 || lm.Intercept != 3 {
		t.Errorf("singular LS fit: got %+v, %v; want horizontal through 3", lm, err)
	}
	lm, err = FitOffsetSamplesRobust([]ClockOffset{{Timestamp: 1, Offset: 2}, {Timestamp: 1, Offset: 4}})
	if err != nil || lm.Slope != 0 || lm.Intercept != 3 {
		t.Errorf("singular robust fit: got %+v, %v; want horizontal through 3", lm, err)
	}
}

// A clock step mid-window corrupts a quarter of the samples; the robust fit
// must track the majority segment while least squares is steered.
func TestFitOffsetSamplesRobustSurvivesClockStep(t *testing.T) {
	var ss []ClockOffset
	for i := 0; i < 40; i++ {
		o := ClockOffset{Timestamp: float64(i) * 0.01, Offset: 2e-6 + 1e-7*float64(i)*0.01}
		if i >= 30 {
			o.Offset += 5e-3 // the stepped tail
		}
		ss = append(ss, o)
	}
	robust, err := FitOffsetSamplesRobust(ss)
	if err != nil {
		t.Fatal(err)
	}
	if got := robust.Predict(0.15); math.Abs(got-(2e-6+1e-7*0.15)) > 1e-6 {
		t.Errorf("robust fit steered by step: predicts %v mid-window", got)
	}
	ls, err := FitOffsetSamples(ss)
	if err != nil {
		t.Fatal(err)
	}
	if got := ls.Predict(0.15); math.Abs(got-(2e-6+1e-7*0.15)) < 1e-4 {
		t.Errorf("least squares unexpectedly survived the step (%v); test premise broken", got)
	}
}

// On a healthy, noise-free machine the FT variant should be as exact as
// the plain algorithms. One FT fit point costs a single ping/pong where a
// SKaMPI fit point costs NExchanges of them, so the message-budget
// equivalent of smallParams (15 × 8) is 120 fit points — and the fit-span
// parity keeps the slope's floating-point noise floor comparable too.
func TestHCA3FTExactOnOffsetOnlyClocks(t *testing.T) {
	at0, at60 := syncSpread(t, offsetOnlyBox(), 16, 48, HCA3FT{NFitpoints: 120}, 60)
	if at0 > 5e-7 {
		t.Errorf("spread at 0 s = %v, want < 0.5 µs", at0)
	}
	if at60 > 1e-6 {
		t.Errorf("spread after 60 s = %v", at60)
	}
}

// ftReports runs HCA3FT under the given plan and returns the per-rank
// reports plus every survivor's global-clock reading at a common instant.
func ftReports(t *testing.T, nprocs int, seed int64, plan faults.Plan,
	alg HCA3FT) ([]RankSync, []float64) {
	t.Helper()
	var mu sync.Mutex
	reps := make([]RankSync, nprocs)
	var readings []float64
	cfg := mpi.Config{
		Spec:   cluster.TestBox(),
		NProcs: nprocs,
		Seed:   seed,
		Faults: faults.NewInjector(plan),
	}
	err := mpi.Run(cfg, func(p *mpi.Proc) {
		g, rep := alg.SyncFT(p.World(), clock.NewLocal(p))
		mu.Lock()
		reps[p.Rank()] = rep
		mu.Unlock()
		if !rep.Alive {
			return
		}
		s := p.World().ShrinkSurvivors()
		end := s.AllreduceF64(p.TrueNow(), mpi.OpMax)
		mu.Lock()
		readings = append(readings, globalReading(g, p.HWClock(), end))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return reps, readings
}

// The acceptance scenario: the reference rank 0 crashes, HCA3FT completes
// on the survivors with the lowest survivor as the re-elected root, and
// every survivor reports a finite sync error.
func TestHCA3FTSurvivesCrashedRoot(t *testing.T) {
	const n = 8
	plan := faults.Plan{Crashes: []faults.Crash{{Rank: 0, At: 0}}, Seed: 1}
	alg := HCA3FT{NFitpoints: 20}
	reps, readings := ftReports(t, n, 77, plan, alg)
	if reps[0].Alive {
		t.Error("doomed root reported alive")
	}
	if reps[1].Ref != -1 {
		t.Errorf("rank 1 should be the re-elected root (Ref −1), got Ref %d", reps[1].Ref)
	}
	for r := 1; r < n; r++ {
		rep := reps[r]
		if !rep.Alive {
			t.Errorf("survivor %d not alive: %+v", r, rep)
		}
		if rep.Degraded {
			t.Errorf("survivor %d degraded without message loss: %+v", r, rep)
		}
		// The median+MAD RTT filter trims the upper tail of the jittery
		// RTT distribution (plus any queued first exchange), but on a
		// lossless link a clear majority must survive.
		if rep.Ref != -1 && rep.Samples < alg.NFitpoints/2 {
			t.Errorf("survivor %d kept only %d/%d samples on a lossless link", r, rep.Samples, alg.NFitpoints)
		}
	}
	if len(readings) != n-1 {
		t.Fatalf("%d survivors reported readings, want %d", len(readings), n-1)
	}
	lo, hi := readings[0], readings[0]
	for _, v := range readings {
		if !finite(v) {
			t.Fatalf("non-finite global reading %v", v)
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if spread := hi - lo; spread > 1e-3 {
		t.Errorf("survivor clock spread %v, want < 1 ms", spread)
	}
}

// Under message loss the sync still completes, every exchange is accounted
// for, and the models stay finite.
func TestHCA3FTCompletesUnderDrops(t *testing.T) {
	const n = 8
	plan := faults.Plan{DropProb: 0.05, Seed: 9}
	alg := HCA3FT{NFitpoints: 20}
	reps, readings := ftReports(t, n, 78, plan, alg)
	for r, rep := range reps {
		if !rep.Alive {
			t.Errorf("rank %d not alive: %+v", r, rep)
		}
		if rep.Ref != -1 {
			if rep.Samples+rep.Lost != alg.NFitpoints {
				t.Errorf("rank %d: samples %d + lost %d != %d", r, rep.Samples, rep.Lost, alg.NFitpoints)
			}
			if rep.Samples == 0 {
				t.Errorf("rank %d kept no samples at 5%% loss", r)
			}
		}
	}
	if len(readings) != n {
		t.Fatalf("%d readings, want %d", len(readings), n)
	}
	for _, v := range readings {
		if !finite(v) {
			t.Fatalf("non-finite global reading %v", v)
		}
	}
}
