package clocksync

import (
	"sort"

	"hclocksync/internal/clock"
	"hclocksync/internal/mpi"
)

// HCA2 is the predecessor of HCA3 (paper Fig. 1a, introduced in the
// authors' EuroMPI'15 work): clock models are learned bottom-up along an
// inverted binomial tree, merged hop by hop towards rank 0, and finally
// distributed with MPI_Scatter. It runs in O(log p) rounds, but model
// merging compounds the per-hop regression error — the inaccuracy HCA3 was
// designed to remove.
type HCA2 struct {
	Params Params
}

// Name returns the paper-style label.
func (h HCA2) Name() string { return h.Params.withDefaults().label("hca2") }

// Sync implements the HCA2 scheme.
func (h HCA2) Sync(comm *mpi.Comm, clk clock.Clock) clock.Clock {
	return hca2Body(comm, h.Params, clk, false)
}

// HCA is HCA2 plus a final O(p) round in which rank 0 re-measures the
// offset to every client and each client re-anchors its intercept — the
// original algorithm of the authors' EuroMPI'15 paper. Technically O(p),
// but the extra round uses cheap single-offset exchanges.
type HCA struct {
	Params Params
}

// Name returns the paper-style label.
func (h HCA) Name() string { return h.Params.withDefaults().label("hca") }

// Sync implements the HCA scheme.
func (h HCA) Sync(comm *mpi.Comm, clk clock.Clock) clock.Clock {
	return hca2Body(comm, h.Params, clk, true)
}

// hca2Body is the shared HCA/HCA2 implementation. When adjustOffsets is
// set, the final per-client intercept re-anchoring round runs (HCA).
func hca2Body(comm *mpi.Comm, p Params, clk clock.Clock, adjustOffsets bool) clock.Clock {
	p = p.withDefaults()
	nprocs := comm.Size()
	r := comm.Rank()
	nrounds := log2floor(nprocs)
	maxPower := 1 << nrounds

	// models[rank] = drift model of rank's clock relative to MY clock;
	// maintained by ranks acting as subtree roots on the way up.
	models := make(map[int]clock.LinearModel)

	if r < maxPower {
		for i := 1; i <= nrounds; i++ {
			running := 1 << i
			next := 1 << (i - 1)
			switch {
			case r%running == 0:
				// Reference: learn model to partner, then absorb the
				// partner's subtree table, re-based through the new model.
				other := r + next
				LearnClockModel(comm, p, r, other, clk)
				cmRefOther := clock.ModelFromF64s(mpi.DecodeF64s(comm.Recv(other, tagModel)))
				models[other] = cmRefOther
				table := mpi.DecodeF64s(comm.Recv(other, tagModel))
				for k := 0; k+2 < len(table); k += 3 {
					sub := int(table[k])
					cmOtherSub := clock.ModelFromF64s(table[k+1 : k+3])
					models[sub] = clock.Merge(cmRefOther, cmOtherSub)
				}
			case r%running == next:
				// Client: fit the model and ship it (plus my subtree
				// table) to the reference; my part of the tree is done.
				other := r - next
				lm := LearnClockModel(comm, p, other, r, clk)
				comm.Send(other, tagModel, mpi.EncodeF64s(lm.ModelF64s()))
				comm.Send(other, tagModel, mpi.EncodeF64s(modelTable(models)))
			}
		}
	}

	// Remainder: ranks >= maxPower learn against r − maxPower and forward
	// the model straight to rank 0, which merges it with cm(0, r−maxPower).
	if r >= maxPower {
		other := r - maxPower
		lm := LearnClockModel(comm, p, other, r, clk)
		comm.Send(0, tagModel, mpi.EncodeF64s(lm.ModelF64s()))
	} else if r < nprocs-maxPower {
		LearnClockModel(comm, p, r, r+maxPower, clk)
	}
	if r == 0 {
		for q := maxPower; q < nprocs; q++ {
			lm := clock.ModelFromF64s(mpi.DecodeF64s(comm.Recv(q, tagModel)))
			base := clock.LinearModel{}
			if q-maxPower != 0 {
				base = models[q-maxPower]
			}
			models[q] = clock.Merge(base, lm)
		}
	}

	// Distribute cm(0, i) to every rank i with MPI_Scatter.
	var chunks [][]byte
	if r == 0 {
		chunks = make([][]byte, nprocs)
		for q := 0; q < nprocs; q++ {
			chunks[q] = mpi.EncodeF64s(models[q].ModelF64s())
		}
	}
	mine := comm.Scatter(chunks, 0)
	lm := clock.ModelFromF64s(mpi.DecodeF64s(mine))
	g := clock.Clock(clk)
	if r != 0 {
		g = clock.New(clk, lm)
	}

	if adjustOffsets {
		g = hcaAdjustIntercepts(comm, p, g)
	}
	return g
}

// hcaAdjustIntercepts runs HCA's final sequential intercept re-anchoring:
// rank 0 measures the remaining offset to each client in turn (both sides
// using their global clocks) and each client shifts its intercept by the
// measured residual.
func hcaAdjustIntercepts(comm *mpi.Comm, p Params, g clock.Clock) clock.Clock {
	r := comm.Rank()
	if r == 0 {
		for q := 1; q < comm.Size(); q++ {
			p.Offset.MeasureOffset(comm, g, 0, q)
		}
		return g
	}
	o := p.Offset.MeasureOffset(comm, g, 0, r)
	gc := g.(*clock.GlobalClockLM)
	lm := gc.Model
	// The measured offset is in global-clock space: shifting the
	// intercept by it zeroes the residual at the measurement instant.
	lm.Intercept += o.Offset
	return clock.New(gc.Base, lm)
}

// modelTable flattens a model table as (rank, slope, intercept) triples in
// ascending rank order, keeping the wire layout deterministic.
func modelTable(models map[int]clock.LinearModel) []float64 {
	ranks := make([]int, 0, len(models))
	for rank := range models { //synclint:ordered -- keys collected then sorted below
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	table := make([]float64, 0, 3*len(ranks))
	for _, rank := range ranks {
		m := models[rank]
		table = append(table, float64(rank), m.Slope, m.Intercept)
	}
	return table
}
