package clocksync

import (
	"fmt"

	"hclocksync/internal/clock"
	"hclocksync/internal/mpi"
	"hclocksync/internal/stats"
)

// Algorithm is a clock synchronization algorithm: called collectively on a
// communicator, it returns each rank's logical global clock. The base clock
// clk may itself be a logical clock, which is what lets algorithms stack
// hierarchically (paper §IV).
type Algorithm interface {
	Sync(comm *mpi.Comm, clk clock.Clock) clock.Clock
	Name() string
}

// Params bundles the knobs shared by the model-learning algorithms
// (HCA/HCA2/HCA3/JK): the paper's label
// "hca3/recompute intercept/1000/SKaMPI-Offset/100" maps to
// {RecomputeIntercept: true, NFitpoints: 1000, Offset: SKaMPIOffset{100}}.
type Params struct {
	NFitpoints         int
	Offset             OffsetAlg
	RecomputeIntercept bool
}

func (p Params) withDefaults() Params {
	if p.NFitpoints <= 0 {
		p.NFitpoints = 100
	}
	if p.Offset == nil {
		p.Offset = SKaMPIOffset{NExchanges: 10}
	}
	return p
}

// label renders the paper's algorithm naming convention.
func (p Params) label(alg string) string {
	ri := ""
	if p.RecomputeIntercept {
		ri = "recompute intercept/"
	}
	return fmt.Sprintf("%s/%s%d/%s", alg, ri, p.NFitpoints, p.Offset.Name())
}

// LearnClockModel implements Alg. 2: both ranks of the (ref, client) pair
// collect NFitpoints offset samples; the client fits a linear drift model
// by least squares and — if RecomputeIntercept is set — re-anchors the
// intercept with one fresh offset measurement. The client returns the
// fitted model; the reference returns the zero model.
func LearnClockModel(comm *mpi.Comm, p Params, ref, client int, clk clock.Clock) clock.LinearModel {
	p = p.withDefaults()
	me := comm.Rank()
	switch me {
	case ref:
		for i := 0; i < p.NFitpoints; i++ {
			p.Offset.MeasureOffset(comm, clk, ref, client)
		}
		if p.RecomputeIntercept {
			p.Offset.MeasureOffset(comm, clk, ref, client)
		}
		return clock.LinearModel{}
	case client:
		buf := getSampleBuf(p.NFitpoints)
		defer putSampleBuf(buf)
		xfit, yfit := buf.x, buf.y
		for i := 0; i < p.NFitpoints; i++ {
			o := p.Offset.MeasureOffset(comm, clk, ref, client)
			xfit[i] = o.Timestamp
			yfit[i] = o.Offset
		}
		fit := stats.FitLinear(xfit, yfit)
		lm := clock.LinearModel{Slope: fit.Slope, Intercept: fit.Intercept}
		if p.RecomputeIntercept {
			o := p.Offset.MeasureOffset(comm, clk, ref, client)
			// Anchor the line exactly through the fresh sample
			// (Alg. 2 line 21).
			lm.Intercept = lm.Slope*(-o.Timestamp) + o.Offset
		}
		return lm
	default:
		panic(fmt.Sprintf("clocksync: rank %d in LearnClockModel(%d,%d)", me, ref, client))
	}
}
