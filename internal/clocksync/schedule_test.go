package clocksync

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"hclocksync/internal/clock"
	"hclocksync/internal/cluster"
	"hclocksync/internal/mpi"
)

// countingOffset wraps an OffsetAlg and records every (ref, client) session
// (the sim is sequential, so the shared map needs no locking discipline
// beyond the mutex).
type countingOffset struct {
	inner OffsetAlg
	mu    *sync.Mutex
	calls map[[2]int]int // world-rank (ref, client) -> MeasureOffset count
}

func (c countingOffset) Name() string { return c.inner.Name() }

func (c countingOffset) MeasureOffset(comm *mpi.Comm, clk clock.Clock, ref, client int) ClockOffset {
	// Count once per pair per call; only the client side records so each
	// logical exchange is counted exactly once.
	if comm.Rank() == client {
		c.mu.Lock()
		c.calls[[2]int{comm.WorldRank(ref), comm.WorldRank(client)}]++
		c.mu.Unlock()
	}
	return c.inner.MeasureOffset(comm, clk, ref, client)
}

// learnSessions reduces raw MeasureOffset counts to learn sessions per
// (ref, client) pair given nfit points per session (ignoring the remainder
// from recompute_intercept, which is off here).
func learnSessions(calls map[[2]int]int, nfit int) map[[2]int]int {
	out := make(map[[2]int]int)
	for k, v := range calls {
		out[k] = v / nfit
	}
	return out
}

func runSchedule(t *testing.T, alg func(Params) Algorithm, nprocs, nfit int) map[[2]int]int {
	t.Helper()
	mu := &sync.Mutex{}
	calls := map[[2]int]int{}
	params := Params{
		NFitpoints: nfit,
		Offset:     countingOffset{inner: SKaMPIOffset{NExchanges: 4}, mu: mu, calls: calls},
	}
	err := mpi.Run(mpi.Config{Spec: cluster.Ideal(8, 2, 2), NProcs: nprocs, Seed: 1},
		func(p *mpi.Proc) {
			alg(params).Sync(p.World(), clock.NewLocal(p))
		})
	if err != nil {
		t.Fatal(err)
	}
	return learnSessions(calls, nfit)
}

// TestHCA3ScheduleMatchesAlgorithm1 verifies the communication structure of
// Alg. 1: every rank except 0 is a *client* in exactly one learn session,
// and the (ref, client) pairs follow the binomial push-down pattern of
// Fig. 1b.
func TestHCA3ScheduleMatchesAlgorithm1(t *testing.T) {
	for _, nprocs := range []int{2, 4, 5, 8, 13, 16} {
		nprocs := nprocs
		t.Run(fmt.Sprintf("p%d", nprocs), func(t *testing.T) {
			sessions := runSchedule(t, func(p Params) Algorithm { return HCA3{p} }, nprocs, 6)
			clientOf := map[int]int{}
			for pair, n := range sessions {
				if n == 0 {
					continue
				}
				if n != 1 {
					t.Errorf("pair %v learned %d times", pair, n)
				}
				if prev, dup := clientOf[pair[1]]; dup {
					t.Errorf("rank %d is client of both %d and %d", pair[1], prev, pair[0])
				}
				clientOf[pair[1]] = pair[0]
			}
			if len(clientOf) != nprocs-1 {
				t.Fatalf("%d clients, want %d", len(clientOf), nprocs-1)
			}
			// Expected pairs per Alg. 1: in step 1, client r learns from
			// r − 2^(i−1) (its lowest set bit within maxPower); in step 2,
			// remainder rank r learns from r − maxPower.
			maxPower := 1
			for maxPower*2 <= nprocs {
				maxPower *= 2
			}
			for client, ref := range clientOf {
				var want int
				if client >= maxPower {
					want = client - maxPower
				} else {
					low := client & (-client) // lowest set bit
					want = client - low
				}
				if ref != want {
					t.Errorf("client %d learned from %d, want %d", client, ref, want)
				}
			}
		})
	}
}

// TestJKScheduleIsSequentialStar verifies JK's O(p) structure: every client
// learns directly from rank 0, exactly once.
func TestJKScheduleIsSequentialStar(t *testing.T) {
	const nprocs = 9
	sessions := runSchedule(t, func(p Params) Algorithm { return JK{p} }, nprocs, 6)
	var pairs [][2]int
	for pair, n := range sessions {
		if n >= 1 {
			pairs = append(pairs, pair)
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a][1] < pairs[b][1] })
	if len(pairs) != nprocs-1 {
		t.Fatalf("%d sessions, want %d", len(pairs), nprocs-1)
	}
	for i, pair := range pairs {
		if pair[0] != 0 || pair[1] != i+1 {
			t.Errorf("session %d = %v, want {0 %d}", i, pair, i+1)
		}
	}
}

// TestHCA2ScheduleSamePairsAsHCA3 verifies that HCA2's bottom-up merge tree
// uses the same (ref, client) learn pairs as HCA3's push-down (Fig. 1a vs
// 1b differ in direction and in what the ref timestamps with, not in the
// pairing), and that HCA's extra per-client adjustment round does not add
// whole learn sessions.
func TestHCA2ScheduleSamePairsAsHCA3(t *testing.T) {
	for _, mk := range []struct {
		name string
		alg  func(Params) Algorithm
	}{
		{"hca2", func(p Params) Algorithm { return HCA2{p} }},
		{"hca", func(p Params) Algorithm { return HCA{p} }},
	} {
		mk := mk
		t.Run(mk.name, func(t *testing.T) {
			const nprocs = 13
			sessions := runSchedule(t, mk.alg, nprocs, 6)
			clientOf := map[int]int{}
			for pair, n := range sessions {
				if n >= 1 {
					clientOf[pair[1]] = pair[0]
				}
			}
			if len(clientOf) != nprocs-1 {
				t.Fatalf("%d clients, want %d", len(clientOf), nprocs-1)
			}
			maxPower := 8
			for client, ref := range clientOf {
				var want int
				if client >= maxPower {
					want = client - maxPower
				} else {
					want = client - client&(-client)
				}
				if ref != want {
					t.Errorf("client %d learned from %d, want %d", client, ref, want)
				}
			}
		})
	}
}
