package clocksync

import (
	"encoding/binary"
	"math"
	"testing"

	"hclocksync/internal/clock"
)

// fuzzSamples decodes the fuzzer's raw bytes into offset samples, 16 bytes
// per (timestamp, offset) pair, bit patterns taken verbatim — so NaNs,
// infinities, and denormals all reach the estimator.
func fuzzSamples(raw []byte) []ClockOffset {
	var samples []ClockOffset
	for i := 0; i+16 <= len(raw) && len(samples) < 4096; i += 16 {
		samples = append(samples, ClockOffset{
			Timestamp: math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])),
			Offset:    math.Float64frombits(binary.LittleEndian.Uint64(raw[i+8:])),
		})
	}
	return samples
}

// fuzzEnc packs float64 values into the fuzzer's raw-bytes sample format.
func fuzzEnc(vals ...float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// fuzzFitSeeds is the shared seed corpus for both drift-estimator fuzz
// targets, including clock-step discontinuities mid-window.
func fuzzFitSeeds(f *testing.F) {
	f.Add(fuzzEnc())                                       // no samples
	f.Add(fuzzEnc(1, 2e-6))                                // one sample
	f.Add(fuzzEnc(1, 2e-6, 2, 2.1e-6, 3, 2.2e-6))          // clean ramp
	f.Add(fuzzEnc(math.NaN(), 1, 1, math.Inf(1)))          // non-finite fields
	f.Add(fuzzEnc(1, 1, 1, 2))                             // singular regression
	f.Add(fuzzEnc(1e308, 1e308, -1e308, 1e308, 2, 1e308))  // overflowing sums
	f.Add(fuzzEnc(5e-324, 1e-300, -5e-324, -1e-300, 0, 0)) // denormals
	// Clock-step discontinuities: a forward step mid-window, a backward
	// step on the last sample, and a step landing between duplicate
	// timestamps.
	f.Add(fuzzEnc(1, 2e-6, 2, 2.1e-6, 3, 5e-3, 4, 5.0001e-3))
	f.Add(fuzzEnc(1, 2e-6, 2, 2.1e-6, 3, -7e-3))
	f.Add(fuzzEnc(1, 2e-6, 1, 5e-3, 2, 5.1e-3))
}

// checkFitTotal asserts the drift-estimator contract on one fuzz input: for
// any sample set — empty, degenerate, non-finite, or overflowing — the fit
// must not panic, and it must either return a typed error with the identity
// model or a fully finite model.
func checkFitTotal(t *testing.T, raw []byte, fit func([]ClockOffset) (clock.LinearModel, error)) {
	samples := fuzzSamples(raw)
	lm, err := fit(samples)
	if err != nil {
		if err != ErrNoSamples && err != ErrNonFiniteFit {
			t.Fatalf("unknown error %v", err)
		}
		if lm != (clock.LinearModel{}) {
			t.Fatalf("declined fit returned non-identity model %+v", lm)
		}
		return
	}
	if !finite(lm.Slope) || !finite(lm.Intercept) {
		t.Fatalf("non-finite model %+v from %d samples", lm, len(samples))
	}
	usable := false
	for _, s := range samples {
		if finite(s.Timestamp) && finite(s.Offset) {
			usable = true
			break
		}
	}
	if !usable {
		t.Fatalf("model %+v fitted with no finite sample", lm)
	}
}

// FuzzFitOffsetSamples checks that the least-squares FT drift estimator is
// total.
func FuzzFitOffsetSamples(f *testing.F) {
	fuzzFitSeeds(f)
	f.Fuzz(func(t *testing.T, raw []byte) { checkFitTotal(t, raw, FitOffsetSamples) })
}

// FuzzFitOffsetSamplesRobust checks the same contract for the Theil–Sen
// estimator, whose pairwise-slope differences hit overflow and degenerate-x
// corners the least-squares path does not.
func FuzzFitOffsetSamplesRobust(f *testing.F) {
	fuzzFitSeeds(f)
	f.Fuzz(func(t *testing.T, raw []byte) { checkFitTotal(t, raw, FitOffsetSamplesRobust) })
}
