package clocksync

import (
	"encoding/binary"
	"math"
	"testing"

	"hclocksync/internal/clock"
)

// fuzzSamples decodes the fuzzer's raw bytes into offset samples, 16 bytes
// per (timestamp, offset) pair, bit patterns taken verbatim — so NaNs,
// infinities, and denormals all reach the estimator.
func fuzzSamples(raw []byte) []ClockOffset {
	var samples []ClockOffset
	for i := 0; i+16 <= len(raw) && len(samples) < 4096; i += 16 {
		samples = append(samples, ClockOffset{
			Timestamp: math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])),
			Offset:    math.Float64frombits(binary.LittleEndian.Uint64(raw[i+8:])),
		})
	}
	return samples
}

// FuzzFitOffsetSamples checks that the FT drift estimator is total: for any
// sample set — empty, degenerate, non-finite, or overflowing — it must not
// panic, and it must either decline (ok=false, identity model) or return a
// fully finite model.
func FuzzFitOffsetSamples(f *testing.F) {
	enc := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(enc())                                       // no samples
	f.Add(enc(1, 2e-6))                                // one sample
	f.Add(enc(1, 2e-6, 2, 2.1e-6, 3, 2.2e-6))          // clean ramp
	f.Add(enc(math.NaN(), 1, 1, math.Inf(1)))          // non-finite fields
	f.Add(enc(1, 1, 1, 2))                             // singular regression
	f.Add(enc(1e308, 1e308, -1e308, 1e308, 2, 1e308))  // overflowing sums
	f.Add(enc(5e-324, 1e-300, -5e-324, -1e-300, 0, 0)) // denormals
	f.Fuzz(func(t *testing.T, raw []byte) {
		samples := fuzzSamples(raw)
		lm, ok := FitOffsetSamples(samples)
		if !ok {
			if lm != (clock.LinearModel{}) {
				t.Fatalf("declined fit returned non-identity model %+v", lm)
			}
			return
		}
		if !finite(lm.Slope) || !finite(lm.Intercept) {
			t.Fatalf("non-finite model %+v from %d samples", lm, len(samples))
		}
		usable := false
		for _, s := range samples {
			if finite(s.Timestamp) && finite(s.Offset) {
				usable = true
				break
			}
		}
		if !usable {
			t.Fatalf("model %+v fitted with no finite sample", lm)
		}
	})
}
