// Package hclocksync is a Go reproduction of "Hierarchical Clock
// Synchronization in MPI" (Hunold & Carpen-Amarie, IEEE CLUSTER 2018).
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory):
//
//   - internal/sim        — deterministic discrete-event simulation kernel
//   - internal/cluster    — machine model: topology, drifting clocks, links
//   - internal/mpi        — MPI-like layer: pt2pt, communicators, collectives
//   - internal/clock      — logical clocks and linear drift models
//   - internal/stats      — regression and summaries
//   - internal/clocksync  — the paper's algorithms (HCA3, H^l-HCA, JK, …)
//   - internal/bench      — barrier/window/Round-Time measurement schemes
//   - internal/trace      — MPI tracing library
//   - internal/amg        — AMG2013 proxy workload
//   - internal/experiments— one harness per paper table/figure
//
// The benchmarks in bench_test.go regenerate every table and figure at a
// reduced scale; the cmd/ tools run them at the default (larger) scale.
package hclocksync
