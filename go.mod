module hclocksync

go 1.22
