package hclocksync_test

// One benchmark per table and figure of the paper, at the reduced "tiny"
// scale (see internal/experiments/tiny.go; the cmd/ tools run the larger
// default scale). Each benchmark reports, besides ns/op, the experiment's
// headline quantities as custom metrics so `go test -bench=.` regenerates
// the paper's numbers in one sweep.

import (
	"io"
	"runtime"
	"testing"

	"hclocksync/internal/bench"
	"hclocksync/internal/checkpoint"
	"hclocksync/internal/clock"
	"hclocksync/internal/clocksync"
	"hclocksync/internal/cluster"
	"hclocksync/internal/experiments"
	"hclocksync/internal/mpi"
	"hclocksync/internal/scale"
	"hclocksync/internal/sim"
	"hclocksync/internal/stats"
)

func BenchmarkTable1Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard)
	}
}

func BenchmarkFig2Drift(b *testing.B) {
	var r2full, r2short float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(nil, experiments.TinyFig2Config())
		if err != nil {
			b.Fatal(err)
		}
		var sf, ss float64
		for _, s := range res.Series {
			sf += s.FullFit.R2
			ss += s.ShortR2
		}
		r2full = sf / float64(len(res.Series))
		r2short = ss / float64(len(res.Series))
	}
	b.ReportMetric(r2full, "R2full")
	b.ReportMetric(r2short, "R2short")
}

func benchSyncAccuracy(b *testing.B, cfg experiments.SyncAccuracyConfig) {
	b.Helper()
	var res *experiments.SyncAccuracyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunSyncAccuracy(nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the first and last algorithm's mean offsets after the wait
	// (µs) — enough to see the ordering in the bench table.
	labels := map[string]bool{}
	idx := 0
	for _, row := range res.Runs {
		if !labels[row.Label] {
			labels[row.Label] = true
			_, _, atW := res.MeanFor(row.Label)
			b.ReportMetric(atW*1e6, "alg"+string(rune('A'+idx))+"_usAtW")
			idx++
		}
	}
}

func BenchmarkFig3FlatSync(b *testing.B)  { benchSyncAccuracy(b, experiments.TinyFig3Config()) }
func BenchmarkFig4Hier(b *testing.B)      { benchSyncAccuracy(b, experiments.TinyFig4Config()) }
func BenchmarkFig5HierHydra(b *testing.B) { benchSyncAccuracy(b, experiments.TinyFig5Config()) }
func BenchmarkFig6HierTitan(b *testing.B) { benchSyncAccuracy(b, experiments.TinyFig6Config()) }

func BenchmarkFig7BarrierEffect(b *testing.B) {
	var tree, bruck float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(nil, experiments.TinyFig7Config())
		if err != nil {
			b.Fatal(err)
		}
		tree = res.LatencyFor(bench.SuiteOSU, mpi.BarrierTree, 8)
		bruck = res.LatencyFor(bench.SuiteOSU, mpi.BarrierDissemination, 8)
	}
	b.ReportMetric(tree*1e6, "osu_tree_us")
	b.ReportMetric(bruck*1e6, "osu_bruck_us")
}

func BenchmarkFig8Imbalance(b *testing.B) {
	cfg := experiments.TinyFig8Config()
	cfg.NCalls = 60
	cfg.NRuns = 1
	var tree, ring float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		tree = res.MeanFor(mpi.BarrierTree)
		ring = res.MeanFor(mpi.BarrierDoubleRing)
	}
	b.ReportMetric(tree*1e6, "tree_us")
	b.ReportMetric(ring*1e6, "double_ring_us")
}

func BenchmarkFig9RoundTime(b *testing.B) {
	var osu, rt float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(nil, experiments.TinyFig9Config())
		if err != nil {
			b.Fatal(err)
		}
		osu = res.MeanFor(bench.SuiteOSU, 8)
		rt = res.MeanFor(bench.SuiteReproMPIRoundTime, 8)
	}
	b.ReportMetric(osu*1e6, "osu8B_us")
	b.ReportMetric(rt*1e6, "roundtime8B_us")
}

func BenchmarkFig10Trace(b *testing.B) {
	var localSpread, globalSpread float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(nil, experiments.TinyFig10Config())
		if err != nil {
			b.Fatal(err)
		}
		localSpread = res.PanelFor(false, cluster.GTOD).SpreadOfStarts()
		globalSpread = res.PanelFor(true, cluster.GTOD).SpreadOfStarts()
	}
	b.ReportMetric(localSpread*1e6, "local_gtod_spread_us")
	b.ReportMetric(globalSpread*1e6, "global_gtod_spread_us")
}

// --- Ablation benches (DESIGN.md §4) ---

func BenchmarkAblationJKOffsetAlg(b *testing.B) {
	var meanRTT, skampi float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationJKOffsetAlg(nil, 8, 30, 10, 2)
		if err != nil {
			b.Fatal(err)
		}
		var ls []string
		seen := map[string]bool{}
		for _, row := range res.Runs {
			if !seen[row.Label] {
				seen[row.Label] = true
				ls = append(ls, row.Label)
			}
		}
		_, _, meanRTT = res.MeanFor(ls[0])
		_, _, skampi = res.MeanFor(ls[1])
	}
	b.ReportMetric(meanRTT*1e6, "jk_meanRTT_usAtW")
	b.ReportMetric(skampi*1e6, "jk_skampi_usAtW")
}

func BenchmarkAblationRecomputeIntercept(b *testing.B) {
	var without, with float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRecomputeIntercept(nil, 8, 30, 10, 2)
		if err != nil {
			b.Fatal(err)
		}
		var ls []string
		seen := map[string]bool{}
		for _, row := range res.Runs {
			if !seen[row.Label] {
				seen[row.Label] = true
				ls = append(ls, row.Label)
			}
		}
		_, without, _ = res.MeanFor(ls[0])
		_, with, _ = res.MeanFor(ls[1])
	}
	b.ReportMetric(without*1e6, "plain_usAt0")
	b.ReportMetric(with*1e6, "recompute_usAt0")
}

func BenchmarkAblationWander(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		w1, w0, err := experiments.AblationWander(nil, 5, 60)
		if err != nil {
			b.Fatal(err)
		}
		on = experiments.MeanFullR2(w1)
		off = experiments.MeanFullR2(w0)
	}
	b.ReportMetric(on, "R2_wanderOn")
	b.ReportMetric(off, "R2_wanderOff")
}

// --- Substrate micro-benchmarks: cost of the building blocks ---

func runBench(b *testing.B, nprocs int, main func(p *mpi.Proc)) {
	b.Helper()
	cfg := mpi.Config{Spec: cluster.TestBox(), NProcs: nprocs, Seed: 99}
	if err := mpi.Run(cfg, main); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSimBarrierAlgorithms(b *testing.B) {
	for _, alg := range mpi.BarrierAlgs() {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			runBench(b, 16, func(p *mpi.Proc) {
				for i := 0; i < b.N; i++ {
					p.World().BarrierWith(alg)
				}
			})
		})
	}
}

func BenchmarkSimAllreduceAlgorithms(b *testing.B) {
	for _, alg := range mpi.AllreduceAlgs() {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			runBench(b, 16, func(p *mpi.Proc) {
				for i := 0; i < b.N; i++ {
					p.World().AllreduceWith([]float64{1}, mpi.OpSum, alg)
				}
			})
		})
	}
}

func BenchmarkHCA3Sync(b *testing.B) {
	b.ReportAllocs()
	params := clocksync.Params{NFitpoints: 20, Offset: clocksync.SKaMPIOffset{NExchanges: 5}}
	for i := 0; i < b.N; i++ {
		if err := mpi.Run(mpi.Config{Spec: cluster.TestBox(), NProcs: 16, Seed: int64(i)},
			func(p *mpi.Proc) {
				clocksync.HCA3{Params: params}.Sync(p.World(), clock.NewLocal(p))
			}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	// Cost of one checkpoint at a quiescent cut: capture the session state
	// and serialize it, with in-flight messages and drifted clocks in the
	// picture. B/rank is the serialized size per rank.
	const nprocs = 16
	s, err := mpi.NewSession(mpi.Config{Spec: cluster.TestBox(), NProcs: nprocs, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	err = s.RunPhase(func(p *mpi.Proc) {
		c := p.World()
		c.Barrier()
		c.AllreduceF64(float64(p.Rank()), mpi.OpSum)
		// Leave one message per even rank in flight across the cut.
		if p.Rank()%2 == 0 && p.Rank()+1 < c.Size() {
			c.SendF64(p.Rank()+1, 1, p.TrueNow())
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var raw []byte
	for i := 0; i < b.N; i++ {
		st, err := s.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		raw = checkpoint.EncodeSession(&checkpoint.Session{Cut: 1, State: st})
	}
	b.ReportMetric(float64(len(raw))/nprocs, "B/rank")
}

func BenchmarkDispatch(b *testing.B) {
	// Per-event dispatch cost of the kernel's two process representations:
	// a step proc is resumed by an inline function call, a fiber by a
	// channel handoff (here always the single-fiber fast path, so no
	// goroutine switch — the gap against "step" is pure baton overhead).
	b.Run("step", func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		remaining := b.N
		env.SpawnStep(func(p *sim.Proc) sim.Control {
			if remaining--; remaining <= 0 {
				return sim.Stop()
			}
			return p.After(1e-6)
		})
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("fiber", func(b *testing.B) {
		b.ReportAllocs()
		env := sim.NewEnv(1)
		env.Spawn(func(p *sim.Proc) {
			for i := 1; i < b.N; i++ {
				p.Sleep(1e-6)
			}
		})
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	})
	// Whole-simulation dispatch throughput on the scale suite's 1M-rank
	// sharded hiersync workload: serial dispatch vs the parallel windowed
	// dispatcher at 4 workers. Results are byte-identical by construction
	// (the scale goldens pin that); this pair measures only the speed. The
	// parallel/serial ratio is only meaningful on a multi-core host — on a
	// single-CPU machine the workers serialize and the ratio reads as pure
	// coordination overhead (see DESIGN.md §13).
	for _, d := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 4}} {
		b.Run(d.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := scale.HierSyncConfig{
				Ranks: 1_000_000, Exchanges: 10, Latency: 2e-6, Jitter: 5e-7,
				Seed: 11, Shards: 8, Workers: d.workers,
			}
			var events uint64
			for i := 0; i < b.N; i++ {
				st, err := scale.RunHierSync(cfg)
				if err != nil {
					b.Fatal(err)
				}
				events = st.Events
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

func BenchmarkKernelMemoryPerRank(b *testing.B) {
	// Resident heap per rank of a spawned 100k-rank step-proc population —
	// the number that decides whether 1M-rank simulations fit in memory.
	// B/rank is measured; kernelB/rank is the compile-time lower bound
	// (sim.KernelBytesPerProc) for comparison.
	const ranks = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		env := sim.NewEnv(1)
		env.SpawnSteps(ranks, func(p *sim.Proc) sim.Control {
			if p.Now() > 0 {
				return sim.Stop()
			}
			return p.After(1e-6)
		})
		runtime.GC()
		runtime.ReadMemStats(&after)
		b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/ranks, "B/rank")
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sim.KernelBytesPerProc()), "kernelB/rank")
}

func BenchmarkLinearFit(b *testing.B) {
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = 4e4 + float64(i)*1e-3
		ys[i] = 1.5e-6*xs[i] - 0.25
	}
	b.ReportAllocs()
	b.ResetTimer()
	var r stats.LinReg
	for i := 0; i < b.N; i++ {
		r = stats.FitLinear(xs, ys)
	}
	_ = r
}

// --- Extension benches (experiments beyond the paper's figures) ---

func BenchmarkExtDriftAware(b *testing.B) {
	cfg := experiments.DefaultDriftAwareConfig()
	cfg.NRuns = 1
	cfg.Waits = []float64{10}
	var skampi, hca3 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDriftAware(nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		skampi = res.AtWait(res.Labels[0], 1)
		hca3 = res.AtWait(res.Labels[1], 1)
	}
	b.ReportMetric(skampi*1e6, "offsetOnly10s_us")
	b.ReportMetric(hca3*1e6, "driftAware10s_us")
}

func BenchmarkExtWindowLoss(b *testing.B) {
	cfg := experiments.DefaultWindowLossConfig()
	cfg.NRep = 100
	var wy, ry float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWindowLoss(nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		wy, ry = res.WindowYield(), res.RoundYield()
	}
	b.ReportMetric(100*wy, "window_yield_pct")
	b.ReportMetric(100*ry, "roundtime_yield_pct")
}

func BenchmarkExtTraceCorrection(b *testing.B) {
	cfg := experiments.DefaultTraceCorrectionConfig()
	cfg.NIter = 20
	var interp, once, periodic float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTraceCorrection(nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		interp = res.MidSpread(experiments.SchemeInterpolation)
		once = res.MaxSpread(experiments.SchemeSyncOnce)
		periodic = res.MaxSpread(experiments.SchemePeriodic)
	}
	b.ReportMetric(interp*1e6, "interp_mid_us")
	b.ReportMetric(once*1e6, "syncOnce_max_us")
	b.ReportMetric(periodic*1e6, "periodic_max_us")
}

func BenchmarkSimAlltoallAlgorithms(b *testing.B) {
	for _, alg := range mpi.AlltoallAlgs() {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			runBench(b, 16, func(p *mpi.Proc) {
				chunks := make([][]byte, 16)
				for i := range chunks {
					chunks[i] = make([]byte, 8)
				}
				for i := 0; i < b.N; i++ {
					p.World().Alltoall(chunks, alg)
				}
			})
		})
	}
}

func BenchmarkExtTuning(b *testing.B) {
	cfg := experiments.DefaultTuningConfig()
	cfg.MSizes = []int{8, 262144}
	cfg.NRep = 15
	spec := cfg.Job.Spec
	spec.Nodes, spec.CoresPerSocket = 8, 2
	cfg.Job = experiments.Job{Spec: spec, NProcs: 32, Seed: 18}
	var disagree float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTuning(nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		disagree = float64(res.Disagreements())
	}
	b.ReportMetric(disagree, "winner_disagreements")
}
