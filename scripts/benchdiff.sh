#!/usr/bin/env bash
# benchdiff.sh — compare two `go test -bench` output files and FAIL on
# regression.
#
# Usage:
#   go test -run '^$' -bench 'BenchmarkSim|BenchmarkHCA3|BenchmarkLinearFit' \
#       -benchmem -count 10 . > old.txt
#   ... apply the change ...
#   go test -run '^$' -bench 'BenchmarkSim|BenchmarkHCA3|BenchmarkLinearFit' \
#       -benchmem -count 10 . > new.txt
#   scripts/benchdiff.sh old.txt new.txt
#
# Exit status: 0 when no benchmark's ns/op regressed by more than the
# threshold (default 10%, override with BENCHDIFF_MAX_REGRESSION_PCT),
# 1 when at least one did — so CI can gate on `scripts/benchdiff.sh base
# head`. The gate compares the per-benchmark *minimum* ns/op across the
# -count repetitions in each file: the minimum is the least noise-polluted
# estimate of the true cost, which keeps single-outlier iterations from
# tripping the gate.
#
# With benchstat on PATH (go install golang.org/x/perf/cmd/benchstat@latest)
# a statistically sound comparison table is printed as well (use
# -count >= 10 for that); the pass/fail decision is always the min-based
# gate, so the exit code does not depend on optional tooling.
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.txt NEW.txt" >&2
    exit 2
fi
old=$1
new=$2
threshold=${BENCHDIFF_MAX_REGRESSION_PCT:-10}

if command -v benchstat >/dev/null 2>&1; then
    benchstat "$old" "$new" || true
    echo
else
    echo "benchdiff: benchstat not found, showing min-sample deltas only" >&2
    echo "benchdiff: (go install golang.org/x/perf/cmd/benchstat@latest for real statistics)" >&2
fi

awk -v threshold="$threshold" '
function keep(name) { sub(/-[0-9]+$/, "", name); return name }
FNR == 1 { file++ }
/^Benchmark/ {
    name = keep($1)
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    # fields: name iters v1 u1 v2 u2 ... — pick ns/op and allocs/op,
    # keeping the per-file minimum across -count repetitions.
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op") {
            if (!((file, name, "ns") in got) || $i + 0 < val[file, name, "ns"]) {
                val[file, name, "ns"] = $i + 0; got[file, name, "ns"] = 1
            }
        }
        if ($(i+1) == "allocs/op") {
            if (!((file, name, "al") in got) || $i + 0 < val[file, name, "al"]) {
                val[file, name, "al"] = $i + 0; got[file, name, "al"] = 1
            }
        }
    }
}
END {
    printf "%-55s %12s %12s %8s %10s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs"
    bad = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!((1, name, "ns") in val) || !((2, name, "ns") in val)) continue
        o = val[1, name, "ns"]; w = val[2, name, "ns"]
        pct = (o > 0) ? 100 * (w - o) / o : 0
        d = (o > 0) ? sprintf("%+.1f%%", pct) : "n/a"
        oa = ((1, name, "al") in val) ? val[1, name, "al"] : "-"
        wa = ((2, name, "al") in val) ? val[2, name, "al"] : "-"
        flag = ""
        if (o > 0 && pct > threshold) { flag = "  << REGRESSION"; bad++ }
        printf "%-55s %12.0f %12.0f %8s %10s %10s%s\n", name, o, w, d, oa, wa, flag
    }
    if (bad > 0) {
        printf "\nbenchdiff: FAIL — %d benchmark(s) regressed more than %s%% (ns/op, min over samples)\n", bad, threshold
        exit 1
    }
    printf "\nbenchdiff: OK — no benchmark regressed more than %s%%\n", threshold
}' "$old" "$new"
