#!/usr/bin/env bash
# benchdiff.sh — compare two `go test -bench` output files and FAIL on
# regression.
#
# Usage:
#   go test -run '^$' -bench 'BenchmarkSim|BenchmarkHCA3|BenchmarkLinearFit' \
#       -benchmem -count 10 . > old.txt
#   ... apply the change ...
#   go test -run '^$' -bench 'BenchmarkSim|BenchmarkHCA3|BenchmarkLinearFit' \
#       -benchmem -count 10 . > new.txt
#   scripts/benchdiff.sh old.txt new.txt
#
# Exit status: 0 when no benchmark metric regressed by more than the
# threshold (default 10%, override with BENCHDIFF_MAX_REGRESSION_PCT),
# 1 when at least one did — so CI can gate on `scripts/benchdiff.sh base
# head`. Every reported unit is gated, not just ns/op: the substrate
# benches report capacity and throughput as custom metrics (B/rank,
# kernelB/rank, events/s, plus -benchmem's B/op and allocs/op), and a
# per-rank memory or dispatch-rate regression is as real as a time one.
# Units ending in "/s" are rates where higher is better (a regression is a
# decrease); everything else is a cost where lower is better. The gate
# compares the per-benchmark best value across the -count repetitions in
# each file (minimum for costs, maximum for rates): the best sample is the
# least noise-polluted estimate of the true value, which keeps
# single-outlier iterations from tripping the gate.
#
# With benchstat on PATH (go install golang.org/x/perf/cmd/benchstat@latest)
# a statistically sound comparison table is printed as well (use
# -count >= 10 for that); the pass/fail decision is always the best-sample
# gate, so the exit code does not depend on optional tooling.
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.txt NEW.txt" >&2
    exit 2
fi
old=$1
new=$2
threshold=${BENCHDIFF_MAX_REGRESSION_PCT:-10}

if command -v benchstat >/dev/null 2>&1; then
    benchstat "$old" "$new" || true
    echo
else
    echo "benchdiff: benchstat not found, showing best-sample deltas only" >&2
    echo "benchdiff: (go install golang.org/x/perf/cmd/benchstat@latest for real statistics)" >&2
fi

awk -v threshold="$threshold" '
function keep(name) { sub(/-[0-9]+$/, "", name); return name }
FNR == 1 { file++ }
/^Benchmark/ {
    name = keep($1)
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    # fields: name iters v1 u1 v2 u2 ... — collect every (value, unit)
    # pair, keeping the per-file best across -count repetitions: the
    # minimum for cost units, the maximum for rate ("/s") units.
    for (i = 3; i < NF; i += 2) {
        u = $(i+1); v = $i + 0
        hib = (u ~ /\/s$/)
        if (!((name, u) in useen)) { uorder[name, ++ucount[name]] = u; useen[name, u] = 1 }
        if (!((file, name, u) in got)) {
            val[file, name, u] = v; got[file, name, u] = 1
        } else if (hib ? v > val[file, name, u] : v < val[file, name, u]) {
            val[file, name, u] = v
        }
    }
}
END {
    printf "%-55s %-12s %14s %14s %8s\n", "benchmark", "unit", "old", "new", "delta"
    bad = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        for (j = 1; j <= ucount[name]; j++) {
            u = uorder[name, j]
            if (!((1, name, u) in got) || !((2, name, u) in got)) continue
            o = val[1, name, u]; w = val[2, name, u]
            hib = (u ~ /\/s$/)
            # Regression percentage: for costs, how much the value grew;
            # for rates, how much it shrank.
            pct = (o > 0) ? (hib ? 100 * (o - w) / o : 100 * (w - o) / o) : 0
            d = (o > 0) ? sprintf("%+.1f%%", (w - o) / o * 100) : "n/a"
            flag = ""
            if (o > 0 && pct > threshold) { flag = "  << REGRESSION"; bad++ }
            printf "%-55s %-12s %14.2f %14.2f %8s%s\n", name, u, o, w, d, flag
        }
    }
    if (bad > 0) {
        printf "\nbenchdiff: FAIL — %d metric(s) regressed more than %s%% (best over samples)\n", bad, threshold
        exit 1
    }
    printf "\nbenchdiff: OK — no metric regressed more than %s%%\n", threshold
}' "$old" "$new"
