#!/usr/bin/env bash
# benchdiff.sh — compare two `go test -bench` output files.
#
# Usage:
#   go test -run '^$' -bench 'BenchmarkSim|BenchmarkHCA3|BenchmarkLinearFit' \
#       -benchmem -count 10 . > old.txt
#   ... apply the change ...
#   go test -run '^$' -bench 'BenchmarkSim|BenchmarkHCA3|BenchmarkLinearFit' \
#       -benchmem -count 10 . > new.txt
#   scripts/benchdiff.sh old.txt new.txt
#
# With benchstat on PATH (go install golang.org/x/perf/cmd/benchstat@latest)
# the comparison is statistically sound (use -count >= 10 for that). Without
# it, the script falls back to a plain per-benchmark delta table over the
# first sample of each benchmark — fine for spotting the big moves, not for
# claiming small ones.
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.txt NEW.txt" >&2
    exit 2
fi
old=$1
new=$2

if command -v benchstat >/dev/null 2>&1; then
    exec benchstat "$old" "$new"
fi

echo "benchdiff: benchstat not found, falling back to single-sample deltas" >&2
echo "benchdiff: (go install golang.org/x/perf/cmd/benchstat@latest for real statistics)" >&2

awk '
function keep(name) { sub(/-[0-9]+$/, "", name); return name }
FNR == 1 { file++ }
/^Benchmark/ {
    name = keep($1)
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    # fields: name iters v1 u1 v2 u2 ... — pick ns/op and allocs/op.
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op" && !((file, name, "ns") in got)) {
            val[file, name, "ns"] = $i; got[file, name, "ns"] = 1
        }
        if ($(i+1) == "allocs/op" && !((file, name, "al") in got)) {
            val[file, name, "al"] = $i; got[file, name, "al"] = 1
        }
    }
}
END {
    printf "%-55s %12s %12s %8s %10s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs"
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!((1, name, "ns") in val) || !((2, name, "ns") in val)) continue
        o = val[1, name, "ns"]; w = val[2, name, "ns"]
        d = (o > 0) ? sprintf("%+.1f%%", 100 * (w - o) / o) : "n/a"
        oa = ((1, name, "al") in val) ? val[1, name, "al"] : "-"
        wa = ((2, name, "al") in val) ? val[2, name, "al"] : "-"
        printf "%-55s %12.0f %12.0f %8s %10s %10s\n", name, o, w, d, oa, wa
    }
}' "$old" "$new"
