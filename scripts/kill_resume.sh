#!/usr/bin/env bash
# Kill-and-resume integration check for the checkpoint subsystem: run a
# sweep with a checkpoint ledger, SIGKILL it mid-flight, resume with
# -restore, and assert that (1) the resumed output is byte-identical to an
# uninterrupted run, (2) the manifests describe the same work, and (3) at
# least one task was served from the ledger rather than recomputed.
#
# Usage: scripts/kill_resume.sh [suite]   (default: faults)
set -euo pipefail
cd "$(dirname "$0")/.."

suite=${1:-faults}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/runexp" ./cmd/runexp
args=(-suite "$suite" -scale tiny -jobs 1 -cache "" -quiet -seed 424242)

# Uninterrupted reference run. Checkpointing stays on so the sync-accuracy
# suites take the same phased schedule as the killed run.
"$tmp/runexp" "${args[@]}" -checkpoint "$tmp/clean.ckpt" -outdir "$tmp/clean" >/dev/null

# Checkpointed run, SIGKILLed as soon as the ledger holds any progress.
"$tmp/runexp" "${args[@]}" -checkpoint "$tmp/run.ckpt" -outdir "$tmp/killed" >/dev/null 2>&1 &
pid=$!
for _ in $(seq 1 400); do
    [ -s "$tmp/run.ckpt" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.02
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
if ! [ -s "$tmp/run.ckpt" ]; then
    echo "kill_resume: run left no ledger to resume from" >&2
    exit 1
fi

# Resume from the ledger in a fresh process.
"$tmp/runexp" "${args[@]}" -restore "$tmp/run.ckpt" -outdir "$tmp/resumed" >/dev/null

diff -u "$tmp/clean/$suite.txt" "$tmp/resumed/$suite.txt" || {
    echo "kill_resume: resumed output differs from the uninterrupted run" >&2
    exit 1
}
go run ./scripts/manifestdiff "$tmp/clean/manifest.json" "$tmp/resumed/manifest.json"
if ! grep -q '"checkpoint_hit": true' "$tmp/resumed/manifest.json"; then
    echo "kill_resume: resume recomputed every task — nothing came from the ledger" >&2
    exit 1
fi
echo "kill_resume: OK ($suite resumed byte-identically with ledger hits)"
