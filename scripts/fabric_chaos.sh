#!/usr/bin/env bash
# Chaos check for the fault-tolerant sweep fabric: run a multi-suite sweep
# on supervised worker processes (-fabric), SIGKILL workers on a schedule
# while it runs, and assert that (1) the output is byte-identical to an
# undisturbed in-process run at the same seed, and (2) the manifest's
# fabric counters prove the machinery actually engaged — at least one
# retry, one lease takeover, and one checkpoint-ledger migration.
#
# Kills land at random points, so a single round may finish before any
# worker holds a job (counters all zero); the experiment retries a few
# times before declaring the fabric untested. Byte-identity, by contrast,
# must hold on every round.
#
# Usage: scripts/fabric_chaos.sh [suites]   (default: faults,fig3,fig7)
set -euo pipefail
cd "$(dirname "$0")/.."

suites=${1:-faults,fig3,fig7}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/runexp" ./cmd/runexp
args=(-suite "$suites" -scale tiny -cache "" -quiet -seed 424242)

# Undisturbed in-process reference. Checkpointing stays on so the
# cut-capable suites take the same phased schedule as the fabric run.
"$tmp/runexp" "${args[@]}" -jobs 4 -checkpoint "$tmp/ref.ckpt" -outdir "$tmp/ref" >/dev/null

# counter NAME FILE -> value of the fabric stat in the manifest (no jq).
counter() {
    grep -o "\"$1\": *[0-9]*" "$2" | head -n1 | grep -o '[0-9]*$' || echo 0
}

ok=
for round in 1 2 3 4 5; do
    rm -rf "$tmp/fab" "$tmp/fab.ckpt"

    "$tmp/runexp" "${args[@]}" -fabric 4 -checkpoint "$tmp/fab.ckpt" -outdir "$tmp/fab" >/dev/null 2>&1 &
    pid=$!

    # Kill schedule: SIGKILL the coordinator's worker children every 150 ms
    # while the sweep is in flight. Six bursts against a ~1 s tiny sweep
    # keep plenty of kills landing mid-job without exhausting any slot's
    # respawn budget.
    for _ in 1 2 3 4 5 6; do
        sleep 0.15
        kill -0 "$pid" 2>/dev/null || break
        pkill -9 -P "$pid" 2>/dev/null || true
    done

    if ! wait "$pid"; then
        echo "fabric_chaos: round $round: coordinator died instead of absorbing worker kills" >&2
        exit 1
    fi

    IFS=, read -ra names <<<"$suites"
    for s in "${names[@]}"; do
        diff -u "$tmp/ref/$s.txt" "$tmp/fab/$s.txt" || {
            echo "fabric_chaos: round $round: $s output differs from the in-process run" >&2
            exit 1
        }
    done

    retries=$(counter retries "$tmp/fab/manifest.json")
    takeovers=$(counter lease_takeovers "$tmp/fab/manifest.json")
    migrations=$(counter ledger_migrations "$tmp/fab/manifest.json")
    echo "fabric_chaos: round $round: byte-identical; retries=$retries takeovers=$takeovers migrations=$migrations"
    if [ "$retries" -ge 1 ] && [ "$takeovers" -ge 1 ] && [ "$migrations" -ge 1 ]; then
        ok=1
        break
    fi
done

if [ -z "$ok" ]; then
    echo "fabric_chaos: no round exercised retry+takeover+migration — kills never landed mid-job" >&2
    exit 1
fi
echo "fabric_chaos: OK ($suites byte-identical under worker SIGKILLs, fabric counters engaged)"
