#!/usr/bin/env bash
# scale_smoke.sh — CI gate for the step-proc kernel's memory claim.
#
# Runs the scale suite at -scale smoke: fig6 through the MPI stack at the
# paper's full 16384 ranks (one trimmed mpirun), plus the 100k-rank
# synthetic step-proc sweeps. GOMEMLIMIT keeps the Go heap honest, and the
# script fails when the process's peak RSS exceeds the ceiling — the
# acceptance bar is the 100k-rank sweeps completing in well under 8 GB.
#
# Peak RSS is sampled from /proc/<pid>/status VmHWM (a monotonic
# high-water mark), so no GNU time dependency; on systems without procfs
# the suite still runs but the memory gate is skipped with a note.
#
# Overrides: SCALE_SMOKE_MAX_RSS_MB (default 8192),
#            SCALE_SMOKE_GOMEMLIMIT (default 6GiB),
#            SCALE_SMOKE_JOBS       (default: all CPUs).
set -euo pipefail
cd "$(dirname "$0")/.."

max_rss_mb=${SCALE_SMOKE_MAX_RSS_MB:-8192}
gomemlimit=${SCALE_SMOKE_GOMEMLIMIT:-6GiB}

bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/runexp" ./cmd/runexp

args=(-suite scale -scale smoke -cache "" -quiet)
if [ -n "${SCALE_SMOKE_JOBS:-}" ]; then
    args+=(-jobs "$SCALE_SMOKE_JOBS")
fi

GOMEMLIMIT=$gomemlimit "$bin/runexp" "${args[@]}" &
pid=$!

peak_kb=0
while kill -0 "$pid" 2>/dev/null; do
    kb=$(awk '/^VmHWM:/ {print $2}' "/proc/$pid/status" 2>/dev/null || true)
    if [ -n "${kb:-}" ] && [ "$kb" -gt "$peak_kb" ]; then
        peak_kb=$kb
    fi
    sleep 0.2
done
wait "$pid" # propagate the suite's exit status

peak_mb=$((peak_kb / 1024))
if [ "$peak_kb" -eq 0 ]; then
    echo "scale-smoke: could not sample VmHWM (no procfs?); memory gate skipped" >&2
    exit 0
fi
echo "scale-smoke: peak RSS ${peak_mb} MB (ceiling ${max_rss_mb} MB)" >&2
if [ "$peak_mb" -gt "$max_rss_mb" ]; then
    echo "scale-smoke: FAIL — peak RSS above the ${max_rss_mb} MB ceiling" >&2
    exit 1
fi
echo "scale-smoke: OK" >&2
