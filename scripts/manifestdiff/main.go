// Command manifestdiff compares two runexp manifest.json files for
// semantic equality: same suites, same tasks, same seeds, same configs,
// same cache keys, no errors on either side. Volatile telemetry — wall
// times, start timestamps, sims/sec, worker counts, and cache/checkpoint
// hit flags — is ignored, because it legitimately differs between a clean
// run and a kill-and-resume run of the same sweep. scripts/kill_resume.sh
// uses this to assert that a resumed sweep did the same work as an
// uninterrupted one.
//
// Usage: manifestdiff A.json B.json — exits 1 with a report on mismatch.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"hclocksync/internal/harness"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: manifestdiff A.json B.json")
		os.Exit(2)
	}
	a, err := load(os.Args[1])
	if err != nil {
		fail(err)
	}
	b, err := load(os.Args[2])
	if err != nil {
		fail(err)
	}
	diffs := compare(a, b)
	for _, d := range diffs {
		fmt.Fprintln(os.Stderr, "manifestdiff:", d)
	}
	if len(diffs) > 0 {
		os.Exit(1)
	}
}

func load(path string) (*harness.RunManifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m harness.RunManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

func compare(a, b *harness.RunManifest) []string {
	var diffs []string
	if a.Version != b.Version {
		diffs = append(diffs, fmt.Sprintf("version: %q vs %q", a.Version, b.Version))
	}
	if len(a.Suites) != len(b.Suites) {
		return append(diffs, fmt.Sprintf("suite count: %d vs %d", len(a.Suites), len(b.Suites)))
	}
	for i := range a.Suites {
		sa, sb := a.Suites[i], b.Suites[i]
		at := fmt.Sprintf("suite %s", sa.Suite)
		if sa.Suite != sb.Suite {
			diffs = append(diffs, fmt.Sprintf("suite[%d]: %q vs %q", i, sa.Suite, sb.Suite))
			continue
		}
		if sa.BaseSeed != sb.BaseSeed {
			diffs = append(diffs, fmt.Sprintf("%s: base seed %d vs %d", at, sa.BaseSeed, sb.BaseSeed))
		}
		if len(sa.Tasks) != len(sb.Tasks) {
			diffs = append(diffs, fmt.Sprintf("%s: task count %d vs %d", at, len(sa.Tasks), len(sb.Tasks)))
			continue
		}
		for j := range sa.Tasks {
			ta, tb := sa.Tasks[j], sb.Tasks[j]
			switch {
			case ta.Name != tb.Name:
				diffs = append(diffs, fmt.Sprintf("%s task[%d]: name %q vs %q", at, j, ta.Name, tb.Name))
			case ta.Seed != tb.Seed:
				diffs = append(diffs, fmt.Sprintf("%s/%s: seed %d vs %d", at, ta.Name, ta.Seed, tb.Seed))
			case ta.SeedKey != tb.SeedKey:
				diffs = append(diffs, fmt.Sprintf("%s/%s: seed key %q vs %q", at, ta.Name, ta.SeedKey, tb.SeedKey))
			case ta.CacheKey != tb.CacheKey:
				diffs = append(diffs, fmt.Sprintf("%s/%s: cache key %s vs %s", at, ta.Name, ta.CacheKey, tb.CacheKey))
			case string(ta.Config) != string(tb.Config):
				diffs = append(diffs, fmt.Sprintf("%s/%s: configs differ", at, ta.Name))
			case ta.Error != "" || tb.Error != "":
				diffs = append(diffs, fmt.Sprintf("%s/%s: errors %q vs %q", at, ta.Name, ta.Error, tb.Error))
			}
		}
	}
	return diffs
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "manifestdiff:", err)
	os.Exit(1)
}
