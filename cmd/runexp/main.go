// Command runexp runs arbitrary experiment suites through the parallel
// experiment engine (internal/harness), with deterministic seeding, a
// persistent result cache, and a run manifest.
//
// Usage:
//
//	runexp -suite NAME[,NAME...]|all [-scale default|tiny|smoke] [-jobs N]
//	       [-workers N] [-fabric N] [-cache DIR] [-outdir DIR] [-seed S]
//	       [-quiet] [-checkpoint FILE] [-checkpoint-every N] [-restore FILE]
//	       [-cpuprofile FILE] [-memprofile FILE]
//	runexp -list
//	runexp -worker
//
// Each suite's simulations are fanned out across -jobs workers; for a fixed
// seed the results are identical at any -jobs setting. Orthogonally,
// -workers N dispatches *each* simulation on N kernel workers under
// conservative lookahead windows (sim.RunParallel, DESIGN.md §13) — today
// that engages the scale suite's sharded step-proc sweeps, while
// fiber-backed suites fall back to serial dispatch — and results stay
// byte-identical at any value, which the golden-hash suite pins. Finished simulations
// are stored content-addressed in -cache (default .expcache), so re-running
// an interrupted or repeated invocation re-simulates only what is missing —
// that is the resume story: kill runexp at any point and run the same
// command line again, and completed work is served from disk.
//
// With -checkpoint, the run additionally maintains a single-file sweep
// ledger (internal/checkpoint's sealed binary format, atomic
// write-then-rename): every finished task's result and, for the
// sync-accuracy, fig7, and faults suites — which then run phased (at the
// end-of-sync barrier, between message sizes, and at the end of the FT
// sync, respectively) — the latest mid-run cut snapshot of each in-flight
// simulation. After a SIGKILL, rerunning the
// same command line with -restore FILE serves finished tasks from the
// ledger and resumes in-flight simulations from their last quiescent cut,
// producing output byte-identical to an uninterrupted checkpointed run
// (see DESIGN.md §11). Note phased execution is a different — equally
// deterministic — schedule than unphased, so checkpointed sync-accuracy
// outputs are not byte-comparable to non-checkpointed ones.
//
// With -fabric N, simulations run in N supervised child *processes*
// instead of in-process goroutines: runexp re-executes itself with -worker
// N times and farms each task out over internal/fabric's leased, heartbeat-
// monitored job protocol. The sweep survives arbitrary worker failure —
// crashed or hung workers are detected, their jobs retried with
// deterministic backoff on respawned processes, and phased tasks resume
// from the dead worker's last checkpoint cut, which migrates to the
// adopting worker. Output stays byte-identical to the same run with
// -jobs N (scripts/fabric_chaos.sh proves this under a SIGKILL schedule);
// the pool's robustness counters land in manifest.json under "fabric".
// -worker is the internal worker mode: it serves fabric jobs on
// stdin/stdout and is not meant to be invoked by hand.
//
// With -cpuprofile / -memprofile, pprof profiles of the whole run are
// written on exit (the memory profile after a final GC), so profiling the
// simulation substrate under any workload is one flag away:
//
//	runexp -suite fig7 -scale tiny -cache "" -cpuprofile cpu.prof
//	go tool pprof -top cpu.prof
//
// With -outdir, every suite's output is written to DIR/<suite>.txt and the
// run's manifest — every task's config, derived seed, wall time, and
// whether it was served from cache — to DIR/manifest.json. A summary line
// with the cache-hit rate is always printed at the end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"hclocksync/internal/experiments"
	"hclocksync/internal/fabric"
	"hclocksync/internal/harness"
)

// printer is the common surface of every experiment result.
type printer interface{ Print(w io.Writer) }

// suiteDef is one runnable entry of the registry. tiny selects the
// test-sized configs; smoke (implies tiny elsewhere, see -scale) is only
// distinguished by the scale suite, which keeps fig6 at the full 16384
// ranks but trims it to a single run for the CI memory gate.
type suiteDef struct {
	name  string
	title string
	run   func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error)
}

// seeded applies the -seed override to a Job-carrying config.
func seeded(seed int64, base *int64) {
	if seed != 0 {
		*base = seed
	}
}

// registry lists the runnable suites. With cut set (checkpointing active)
// the sync-accuracy, fig7, and faults suites run phased, so a killed sweep resumes
// from each mpirun's last quiescent cut; phased results are deterministic
// but keyed and hashed separately from unphased ones. workers is the kernel dispatch
// parallelism (-workers): it reaches the scale suite's sharded step-proc
// sweeps, where N > 1 engages sim.RunParallel, and the sync-accuracy jobs,
// where today's fiber ranks make it a byte-identical no-op. It never enters
// a cache key — for a fixed seed the output is identical at any value.
func registry(cut bool, workers int) []suiteDef {
	pickSync := func(tiny bool, tinyFn, defFn func() experiments.SyncAccuracyConfig) experiments.SyncAccuracyConfig {
		if tiny {
			return tinyFn()
		}
		return defFn()
	}
	syncSuite := func(name, title string, tinyFn, defFn func() experiments.SyncAccuracyConfig) suiteDef {
		return suiteDef{name, title, func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := pickSync(tiny, tinyFn, defFn)
			cfg.Cut = cut
			cfg.Job.Workers = workers
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunSyncAccuracy(eng, cfg)
		}}
	}
	return []suiteDef{
		{"fig2", "Fig. 2 — clock drift", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultFig2Config()
			if tiny {
				cfg = experiments.TinyFig2Config()
			}
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunFig2(eng, cfg)
		}},
		syncSuite("fig3", "Fig. 3 — HCA/HCA2/HCA3/JK accuracy vs duration",
			experiments.TinyFig3Config, experiments.DefaultFig3Config),
		syncSuite("fig4", "Fig. 4 — HCA3 vs H2HCA, Jupiter",
			experiments.TinyFig4Config, experiments.DefaultFig4Config),
		syncSuite("fig5", "Fig. 5 — HCA3 vs H2HCA, Hydra",
			experiments.TinyFig5Config, experiments.DefaultFig5Config),
		syncSuite("fig6", "Fig. 6 — HCA3 vs H2HCA, Titan",
			experiments.TinyFig6Config, experiments.DefaultFig6Config),
		{"fig7", "Fig. 7 — benchmark suite x barrier algorithm", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultFig7Config()
			if tiny {
				cfg = experiments.TinyFig7Config()
			}
			cfg.Cut = cut
			cfg.Job.Workers = workers
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunFig7(eng, cfg)
		}},
		{"fig8", "Fig. 8 — barrier exit imbalance", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultFig8Config()
			if tiny {
				cfg = experiments.TinyFig8Config()
			}
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunFig8(eng, cfg)
		}},
		{"fig9", "Fig. 9 — OSU vs Round-Time across message sizes", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultFig9Config()
			if tiny {
				cfg = experiments.TinyFig9Config()
			}
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunFig9(eng, cfg)
		}},
		{"fig10", "Fig. 10 — AMG2013 trace Gantt", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultFig10Config()
			if tiny {
				cfg = experiments.TinyFig10Config()
			}
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunFig10(eng, cfg)
		}},
		{"driftaware", "Offset-only vs drift-aware global clocks", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultDriftAwareConfig()
			if tiny {
				cfg.NRuns = 2
			}
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunDriftAware(eng, cfg)
		}},
		{"windowloss", "Window cascade vs Round-Time yield", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultWindowLossConfig()
			if tiny {
				cfg.NRep = 100
			}
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunWindowLoss(eng, cfg)
		}},
		{"tracecorr", "Timestamp correction over a long trace", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultTraceCorrectionConfig()
			if tiny {
				cfg.NIter, cfg.ComputePer = 20, 2
			}
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunTraceCorrection(eng, cfg)
		}},
		{"tuning", "PGMPITuneLib-style algorithm selection", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultTuningConfig()
			if tiny {
				cfg.NRep, cfg.MSizes = 10, []int{8, 8192}
			}
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunTuning(eng, cfg)
		}},
		{"faults", "Faults — FT-HCA3 sync error under drop rate x crash count", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultFaultsConfig()
			if tiny {
				cfg = experiments.TinyFaultsConfig()
			}
			cfg.Cut = cut
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunFaults(eng, cfg)
		}},
		{"clockfaults", "Clock faults — LS vs robust sync under step x Byzantine", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultClockFaultsConfig()
			if tiny {
				cfg = experiments.TinyClockFaultsConfig()
			}
			seeded(seed, &cfg.Job.Seed)
			return experiments.RunClockFaults(eng, cfg)
		}},
		{"scale", "Scale — fig6 at the full 16k ranks + 100k-1M-rank step-proc sweeps", func(eng *harness.Engine, tiny, smoke bool, seed int64) (printer, error) {
			cfg := experiments.DefaultScaleConfig()
			switch {
			case smoke:
				cfg = experiments.SmokeScaleConfig()
			case tiny:
				cfg = experiments.TinyScaleConfig()
			}
			cfg.Workers = workers
			cfg.Fig6.Job.Workers = workers
			seeded(seed, &cfg.Seed)
			seeded(seed, &cfg.Fig6.Job.Seed)
			return experiments.RunScale(eng, cfg)
		}},
	}
}

func main() {
	suites := flag.String("suite", "", "comma-separated suite names, or \"all\"")
	scale := flag.String("scale", "default", "default, tiny, or smoke (tiny everywhere except the scale suite, which keeps fig6 at full rank count)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "simulations to run concurrently")
	workers := flag.Int("workers", 1, "kernel dispatch workers per simulation (parallel DES; results are byte-identical at any value)")
	fabricN := flag.Int("fabric", 0, "run simulations in N supervised child processes (fault-tolerant sweep fabric; results are byte-identical to -jobs N)")
	workerMode := flag.Bool("worker", false, "internal: serve fabric jobs on stdin/stdout")
	cache := flag.String("cache", ".expcache", "result-cache directory (empty disables caching)")
	outdir := flag.String("outdir", "", "write per-suite .txt outputs and manifest.json here")
	seed := flag.Int64("seed", 0, "override every suite's base seed")
	ckptPath := flag.String("checkpoint", "", "write a crash-resumable sweep ledger to this file")
	ckptEvery := flag.Int("checkpoint-every", 1, "flush the ledger after every N completed tasks or saved cuts")
	restore := flag.String("restore", "", "resume from this sweep ledger (implies -checkpoint to the same file)")
	list := flag.Bool("list", false, "list available suites and exit")
	quiet := flag.Bool("quiet", false, "suppress progress lines on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (after a final GC) to this file")
	flag.Parse()

	if *workerMode {
		if *fabricN > 0 {
			fmt.Fprintln(os.Stderr, "runexp: -worker and -fabric are mutually exclusive")
			os.Exit(2)
		}
		if err := runWorker(); err != nil {
			fail(err)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	switch *scale {
	case "default", "tiny", "smoke":
	default:
		fmt.Fprintf(os.Stderr, "runexp: unknown -scale %q (default, tiny, or smoke)\n", *scale)
		os.Exit(2)
	}
	if *restore != "" && *ckptPath != "" && *restore != *ckptPath {
		fmt.Fprintln(os.Stderr, "runexp: -restore and -checkpoint must name the same ledger file")
		os.Exit(2)
	}
	if *ckptPath == "" {
		*ckptPath = *restore
	}
	reg := registry(*ckptPath != "", *workers)
	if *list {
		for _, s := range reg {
			fmt.Printf("%-12s %s\n", s.name, s.title)
		}
		return
	}
	if *suites == "" {
		fmt.Fprintln(os.Stderr, "runexp: -suite is required (try -list)")
		os.Exit(2)
	}
	var selected []suiteDef
	if *suites == "all" {
		selected = reg
	} else {
		byName := map[string]suiteDef{}
		for _, s := range reg {
			byName[s.name] = s
		}
		for _, name := range strings.Split(*suites, ",") {
			s, ok := byName[strings.TrimSpace(name)]
			if !ok {
				var known []string
				for n := range byName { //synclint:ordered -- keys collected then sorted below
					known = append(known, n)
				}
				sort.Strings(known)
				fmt.Fprintf(os.Stderr, "runexp: unknown suite %q (known: %s)\n",
					name, strings.Join(known, ", "))
				os.Exit(2)
			}
			selected = append(selected, s)
		}
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fail(err)
		}
	}

	opts := harness.Options{Jobs: *jobs, CacheDir: *cache}
	if !*quiet {
		opts.Reporter = harness.NewProgressReporter(os.Stderr)
	}
	var ckpt *harness.Checkpointer
	if *ckptPath != "" {
		ckpt = harness.NewCheckpointer(*ckptPath, *ckptEvery, "")
		if *restore != "" {
			if err := ckpt.Load(); err != nil {
				fail(fmt.Errorf("restoring %s: %w", *restore, err))
			}
		}
		opts.Checkpoint = ckpt
	}
	var pool *fabric.Pool
	if *fabricN > 0 {
		exe, err := os.Executable()
		if err != nil {
			fail(fmt.Errorf("locating own executable for -fabric workers: %w", err))
		}
		pcfg := fabric.Config{
			Workers:    *fabricN,
			Command:    []string{exe, "-worker"},
			Scale:      *scale,
			Seed:       *seed,
			Cut:        *ckptPath != "",
			SimWorkers: *workers,
			JitterSeed: *seed,
		}
		if ckpt != nil {
			// Mirror worker cut snapshots into the coordinator's own sweep
			// ledger, and ship -restore'd cuts out to workers.
			pcfg.Cuts = ckpt.Task
		}
		if !*quiet {
			pcfg.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		pool, err = fabric.NewPool(pcfg)
		if err != nil {
			fail(err)
		}
		defer pool.Close()
		opts.Remote = pool
		// One engine slot per fabric worker: each slot just blocks on its
		// dispatched job, so wider would only queue jobs at the pool.
		opts.Jobs = *fabricN
	}
	eng := harness.New(opts)
	start := time.Now() //synclint:wallclock -- wall-time telemetry for the manifest; never hashed

	for _, s := range selected {
		if pool != nil {
			// The registry entry name disambiguates which suite's
			// decomposition a worker must replay: several entries share one
			// harness suite name (fig3–fig6 are all "syncaccuracy").
			pool.SetEntry(s.name)
		}
		res, err := s.run(eng, *scale != "default", *scale == "smoke", *seed)
		if err != nil {
			fail(fmt.Errorf("%s: %w", s.name, err))
		}
		fmt.Printf("\n==================== %s ====================\n", s.title)
		res.Print(os.Stdout)
		if *outdir != "" {
			f, err := os.Create(filepath.Join(*outdir, s.name+".txt"))
			if err != nil {
				fail(err)
			}
			res.Print(f)
			f.Close()
		}
	}

	if ckpt != nil {
		if err := ckpt.Flush(); err != nil {
			fail(fmt.Errorf("flushing checkpoint: %w", err))
		}
	}

	if pool != nil {
		pool.Close() // idempotent; workers are down before stats are read
	}
	m := harness.NewRunManifest("runexp", eng, start, eng.Manifests())
	if pool != nil {
		m.Fabric = pool.Stats()
	}
	if *outdir != "" {
		if err := m.Write(filepath.Join(*outdir, "manifest.json")); err != nil {
			fail(err)
		}
	}
	// On stderr, like every timing line: stdout must stay byte-comparable
	// across runs and job counts.
	fmt.Fprintf(os.Stderr, "\nrunexp: %d sims in %v, %d served from cache (%.0f%% hit rate)\n",
		m.Sims, time.Since(start).Round(time.Millisecond), m.CacheHits, 100*m.HitRate()) //synclint:wallclock -- progress message on stderr only
}

// runWorker is the child-process side of -fabric: it serves fabric jobs
// on stdin/stdout until the coordinator closes the pipe. Each job re-runs
// the registry entry named in the request with a single-job engine whose
// filter skips every task but the requested one — so the task's config and
// seed are rebuilt from the same first principles as in the coordinator —
// and whose observer captures that task's canonical-JSON result. The
// streaming ledger handed in by ServeWorker replays any migrated resume
// snapshot into the task and relays its cut saves back over the wire.
func runWorker() error {
	return fabric.ServeWorker(os.Stdin, os.Stdout, fabric.WorkerOptions{}, func(req fabric.JobRequest, ledger harness.Ledger) (string, json.RawMessage, error) {
		reg := registry(req.Cut, req.Workers)
		var def *suiteDef
		for i := range reg {
			if reg[i].name == req.Entry {
				def = &reg[i]
				break
			}
		}
		if def == nil {
			return "", nil, fmt.Errorf("unknown registry entry %q", req.Entry)
		}
		var (
			key   string
			raw   json.RawMessage
			found bool
			merr  error
		)
		eng := harness.New(harness.Options{
			Jobs:       1,
			Checkpoint: ledger,
			Filter: func(suite, name string) bool {
				return suite == req.Suite && name == req.Task
			},
			Observer: func(suite, name, k string, seed int64, result any) {
				if suite != req.Suite || name != req.Task || found {
					return
				}
				b, err := json.Marshal(result)
				if err != nil {
					merr = fmt.Errorf("marshaling %s/%s result: %w", suite, name, err)
					return
				}
				key, raw, found = k, b, true
			},
		})
		if _, err := def.run(eng, req.Scale != "default", req.Scale == "smoke", req.Seed); err != nil {
			return "", nil, err
		}
		if merr != nil {
			return "", nil, merr
		}
		if !found {
			return "", nil, fmt.Errorf("task %s/%s not in entry %q's decomposition", req.Suite, req.Task, req.Entry)
		}
		return key, raw, nil
	})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "runexp:", err)
	os.Exit(1)
}
