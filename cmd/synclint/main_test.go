package main

import (
	"os"
	"sort"
	"testing"

	"hclocksync/internal/analysis"
	"hclocksync/internal/analysis/registry"
)

// TestParallelLoadIsDeterministic pins the -jobs contract: LoadParallel
// returns packages in the same order as Load, and the diagnostics that
// come out of the analyzer suite are byte-identical and position-sorted
// regardless of how the load was scheduled.
func TestParallelLoadIsDeterministic(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	patterns := []string{"./internal/stats", "./internal/trace", "./internal/clock"}

	serial, err := analysis.Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := analysis.LoadParallel(root, 4, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) == 0 {
		t.Fatalf("Load returned %d packages, LoadParallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].PkgPath != parallel[i].PkgPath {
			t.Errorf("package order diverged at %d: %s vs %s", i, serial[i].PkgPath, parallel[i].PkgPath)
		}
	}

	render := func(pkgs []*analysis.Package) []string {
		diags, err := analysis.RunAll(pkgs, registry.All())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(diags))
		for i, d := range diags {
			out[i] = d.String()
		}
		return out
	}
	serialOut := render(serial)
	parallelOut := render(parallel)
	if len(serialOut) != len(parallelOut) {
		t.Fatalf("diagnostic count diverged: %d vs %d", len(serialOut), len(parallelOut))
	}
	for i := range serialOut {
		if serialOut[i] != parallelOut[i] {
			t.Errorf("diagnostic %d diverged:\n serial:   %s\n parallel: %s", i, serialOut[i], parallelOut[i])
		}
	}
	if !sort.StringsAreSorted(parallelOut) {
		// Position-sorted diagnostics render in sorted string order when
		// they share no file; this is a sanity check, not the contract.
		t.Logf("rendered diagnostics not lexically sorted (fine if files interleave): %v", parallelOut)
	}
}
