// Command synclint is the repository's multichecker: it runs the custom
// analyzers under internal/analysis/... over the given package patterns
// and exits non-zero on any finding. It guards the invariants the test
// suite can only falsify after the fact — deterministic, byte-identical
// outputs (nondeterm, seedflow), the allocation-free sim/MPI hot path
// (allocfree), silent discards of fallible MPI results (mpierr), the
// field-coverage family (snapfields for checkpoint codecs, cachekey for
// cache-key hygiene, guardedby for lock discipline) — plus the
// //synclint: annotation grammar itself (synclintdir).
//
// Usage:
//
//	go run ./cmd/synclint ./...          # whole repository (what make lint runs)
//	go run ./cmd/synclint ./internal/sim # one package
//	go run ./cmd/synclint -json ./...    # one JSON diagnostic per line
//	go run ./cmd/synclint -jobs 4 ./...  # parallel load/typecheck
//	go run ./cmd/synclint -list          # describe the analyzers
//
// Output is position-sorted and deterministic at any -jobs setting; the
// per-run wall-clock summary goes to stderr so stdout stays diffable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hclocksync/internal/analysis"
	"hclocksync/internal/analysis/registry"
)

// jsonDiag is the -json wire form: one object per line, stable field
// names, so CI can archive and diff diagnostics across PRs.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic object per line instead of text")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel package load/typecheck workers")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: synclint [-list] [-json] [-jobs N] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loadStart := time.Now() //synclint:wallclock -- lint-run telemetry printed to stderr; never reaches results
	pkgs, err := analysis.LoadParallel(".", *jobs, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "synclint: %v\n", err)
		os.Exit(2)
	}
	loadDur := time.Since(loadStart) //synclint:wallclock -- lint-run telemetry printed to stderr; never reaches results

	// Analyzers run over the full set at once: the framework position-sorts
	// the combined diagnostics, so output order is independent of both the
	// load schedule and the per-package completion order.
	diags, err := analysis.RunAll(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "synclint: %v\n", err)
		os.Exit(2)
	}
	runDur := time.Since(loadStart) - loadDur //synclint:wallclock -- lint-run telemetry printed to stderr; never reaches results

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			jd := jsonDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Analyzer: d.Analyzer, Message: d.Message}
			if err := enc.Encode(jd); err != nil {
				fmt.Fprintf(os.Stderr, "synclint: %v\n", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	fmt.Fprintf(os.Stderr, "synclint: %d package(s), %d analyzer(s), %d finding(s); load %s, analyze %s (jobs=%d)\n",
		len(pkgs), len(analyzers), len(diags), loadDur.Round(time.Millisecond), runDur.Round(time.Millisecond), *jobs)
	if len(diags) > 0 {
		os.Exit(1)
	}
}
