// Command synclint is the repository's multichecker: it runs the custom
// analyzers under internal/analysis/... over the given package patterns
// and exits non-zero on any finding. It guards the two invariants the
// test suite can only falsify after the fact — deterministic,
// byte-identical outputs (nondeterm, seedflow) and the allocation-free
// sim/MPI hot path (allocfree) — plus silent discards of fallible MPI
// results (mpierr) and the //synclint: annotation grammar itself
// (synclintdir).
//
// Usage:
//
//	go run ./cmd/synclint ./...          # whole repository (what make lint runs)
//	go run ./cmd/synclint ./internal/sim # one package
//	go run ./cmd/synclint -list          # describe the analyzers
package main

import (
	"flag"
	"fmt"
	"os"

	"hclocksync/internal/analysis"
	"hclocksync/internal/analysis/registry"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: synclint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "synclint: %v\n", err)
		os.Exit(2)
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synclint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "synclint: %d finding(s)\n", found)
		os.Exit(1)
	}
}
