// Command collbench regenerates the collective-benchmarking experiments:
// Fig. 7 (Allreduce latency by benchmark suite × barrier algorithm) and
// Fig. 9 (OSU vs ReproMPI Round-Time across message sizes).
//
// Usage:
//
//	collbench [-fig 7|9] [-rep N] [-runs N] [-scale default|tiny] [-seed S]
//	          [-jobs N] [-cachedir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hclocksync/internal/experiments"
	"hclocksync/internal/harness"
)

func main() {
	fig := flag.Int("fig", 7, "paper figure to regenerate (7 or 9)")
	rep := flag.Int("rep", 0, "override repetitions per measurement")
	runs := flag.Int("runs", 0, "override mpiruns (fig 9)")
	scale := flag.String("scale", "default", "default or tiny")
	seed := flag.Int64("seed", 0, "override the simulation seed")
	jobs := flag.Int("jobs", runtime.NumCPU(), "simulations to run concurrently")
	cachedir := flag.String("cachedir", "", "serve repeated simulations from this result-cache directory")
	flag.Parse()

	eng := harness.New(harness.Options{Jobs: *jobs, CacheDir: *cachedir})

	switch *fig {
	case 7:
		cfg := experiments.DefaultFig7Config()
		if *scale == "tiny" {
			cfg = experiments.TinyFig7Config()
		}
		if *rep > 0 {
			cfg.NRep = *rep
		}
		if *seed != 0 {
			cfg.Job.Seed = *seed
		}
		res, err := experiments.RunFig7(eng, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "collbench:", err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
	case 9:
		cfg := experiments.DefaultFig9Config()
		if *scale == "tiny" {
			cfg = experiments.TinyFig9Config()
		}
		if *rep > 0 {
			cfg.NRep = *rep
		}
		if *runs > 0 {
			cfg.NRuns = *runs
		}
		if *seed != 0 {
			cfg.Job.Seed = *seed
		}
		res, err := experiments.RunFig9(eng, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "collbench:", err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
	default:
		fmt.Fprintln(os.Stderr, "collbench: -fig must be 7 or 9")
		os.Exit(2)
	}
}
