// Command bench2json converts `go test -bench` output on stdin into a
// machine-readable JSON trajectory file, so every benchmark run leaves a
// comparable artifact (BENCH_sim.json) instead of a transient terminal
// table.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSim -benchmem . | bench2json -o BENCH_sim.json
//
// Every benchmark line is parsed into its name, the GOMAXPROCS suffix, the
// iteration count, and all (value, unit) metric pairs — ns/op, B/op,
// allocs/op, and any custom b.ReportMetric units. Context lines (goos,
// goarch, pkg, cpu) are carried through. Non-benchmark lines are ignored,
// so the tool can sit at the end of any `go test -bench` pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix, the
	// stable key future runs are compared under.
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Tool       string            `json:"tool"`
	Context    map[string]string `json:"context"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output file (\"-\" for stdout)")
	flag.Parse()

	rep := report{Tool: "bench2json", Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := benchmark{Name: fields[0], Procs: 1, Iterations: iters, Metrics: map[string]float64{}}
		if i := strings.LastIndex(b.Name, "-"); i >= 0 {
			if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
				b.Name, b.Procs = b.Name[:i], p
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if len(rep.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark lines found on stdin"))
	}
	sort.SliceStable(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "bench2json: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench2json:", err)
	os.Exit(1)
}
