// Command syncbench regenerates the clock-synchronization accuracy
// experiments of the paper's Figs. 3–6: for each algorithm and mpirun it
// reports the synchronization duration and the maximum clock offset right
// after synchronization and again after a waiting period.
//
// Usage:
//
//	syncbench [-fig 3|4|5|6] [-runs N] [-wait 10] [-scale default|tiny] [-seed S]
//	          [-jobs N] [-cachedir DIR]
//
// -fig selects the paper figure: 3 compares HCA/HCA2/HCA3/JK on Jupiter;
// 4–6 compare flat HCA3 against the hierarchical H2HCA on Jupiter, Hydra,
// and Titan respectively. Scales are reduced from the paper's testbeds; see
// DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hclocksync/internal/experiments"
	"hclocksync/internal/harness"
)

func main() {
	fig := flag.Int("fig", 3, "paper figure to regenerate (3, 4, 5, or 6)")
	runs := flag.Int("runs", 0, "override the number of mpiruns")
	wait := flag.Float64("wait", 0, "override the wait time (seconds)")
	scale := flag.String("scale", "default", "default or tiny")
	seed := flag.Int64("seed", 0, "override the simulation seed")
	jobs := flag.Int("jobs", runtime.NumCPU(), "simulations to run concurrently")
	cachedir := flag.String("cachedir", "", "serve repeated simulations from this result-cache directory")
	flag.Parse()

	var cfg experiments.SyncAccuracyConfig
	switch *fig {
	case 3:
		cfg = experiments.DefaultFig3Config()
		if *scale == "tiny" {
			cfg = experiments.TinyFig3Config()
		}
	case 4:
		cfg = experiments.DefaultFig4Config()
		if *scale == "tiny" {
			cfg = experiments.TinyFig4Config()
		}
	case 5:
		cfg = experiments.DefaultFig5Config()
		if *scale == "tiny" {
			cfg = experiments.TinyFig5Config()
		}
	case 6:
		cfg = experiments.DefaultFig6Config()
		if *scale == "tiny" {
			cfg = experiments.TinyFig6Config()
		}
	default:
		fmt.Fprintln(os.Stderr, "syncbench: -fig must be 3, 4, 5, or 6")
		os.Exit(2)
	}
	if *runs > 0 {
		cfg.NRuns = *runs
	}
	if *wait > 0 {
		cfg.WaitTime = *wait
	}
	if *seed != 0 {
		cfg.Job.Seed = *seed
	}
	eng := harness.New(harness.Options{Jobs: *jobs, CacheDir: *cachedir})
	res, err := experiments.RunSyncAccuracy(eng, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syncbench:", err)
		os.Exit(1)
	}
	fmt.Printf("(paper Fig. %d)\n", *fig)
	res.Print(os.Stdout)
}
