// Command reprompi is a ReproMPI-style MPI benchmarking tool for the
// simulated cluster: pick a machine, a collective, message sizes, a
// measurement scheme (barrier / window / Round-Time), and a clock
// synchronization algorithm, and get a latency summary table.
//
// Examples:
//
//	reprompi -machine jupiter -procs 64 -op allreduce -msizes 4,8,16,64 \
//	         -scheme roundtime -sync h2hca -nrep 100
//	reprompi -machine titan -procs 128 -op alltoall -scheme barrier -barrier tree
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hclocksync/internal/clocksync"
	"hclocksync/internal/cluster"
	"hclocksync/internal/experiments"
)

func main() {
	machine := flag.String("machine", "jupiter", "machine preset: jupiter, hydra, titan")
	procs := flag.Int("procs", 64, "number of MPI ranks")
	op := flag.String("op", "allreduce", "collective: allreduce, alltoall, bcast, barrier")
	msizes := flag.String("msizes", "8", "comma-separated message sizes in bytes")
	scheme := flag.String("scheme", "roundtime", "measurement scheme: barrier, window, roundtime")
	barrier := flag.String("barrier", "tree", "barrier algorithm for the barrier scheme")
	syncAlg := flag.String("sync", "h2hca", "clock sync: hca, hca2, hca3, jk, h2hca, h3hca, skampi")
	nfit := flag.Int("nfit", 150, "fit points per clock model")
	nexch := flag.Int("nexch", 20, "ping-pongs per offset measurement")
	nrep := flag.Int("nrep", 50, "repetitions (or max repetitions for roundtime)")
	slice := flag.Float64("slice", 0.05, "roundtime time slice in seconds")
	window := flag.Float64("window", 0, "window size in seconds (0 = 4x estimate)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "reprompi:", err)
		os.Exit(1)
	}
	spec, err := experiments.ParseMachine(*machine)
	if err != nil {
		die(err)
	}
	ba, err := experiments.ParseBarrierAlg(*barrier)
	if err != nil {
		die(err)
	}
	sa, err := experiments.ParseSyncAlg(*syncAlg, clocksync.Params{
		NFitpoints: *nfit,
		Offset:     clocksync.SKaMPIOffset{NExchanges: *nexch},
	})
	if err != nil {
		die(err)
	}
	var sizes []int
	for _, tok := range strings.Split(*msizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v <= 0 {
			die(fmt.Errorf("bad message size %q", tok))
		}
		sizes = append(sizes, v)
	}
	res, err := experiments.RunCustom(experiments.CustomConfig{
		Job: experiments.Job{
			Spec:    spec,
			NProcs:  *procs,
			Mapping: cluster.MapBlock,
			Seed:    *seed,
		},
		Operation: *op,
		MSizes:    sizes,
		Scheme:    *scheme,
		NRep:      *nrep,
		Window:    *window,
		TimeSlice: *slice,
		Sync:      sa,
		Barrier:   ba,
	})
	if err != nil {
		die(err)
	}
	res.Print(os.Stdout)
}
