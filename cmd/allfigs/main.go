// Command allfigs regenerates every table and figure of the paper in one
// run, printing each experiment's rows in sequence. This is the harness
// behind EXPERIMENTS.md.
//
// Usage:
//
//	allfigs [-scale default|tiny] [-ablations] [-outdir DIR]
//	        [-jobs N] [-cachedir DIR] [-quiet]
//
// Simulations are fanned out across -jobs workers through the experiment
// engine (internal/harness); results are deterministic for a fixed seed
// regardless of -jobs. With -cachedir, finished simulations are served from
// the on-disk result cache on the next invocation.
//
// With -outdir, each section is additionally written to DIR/<name>.txt, the
// plottable series (Fig. 2 drift curves, Fig. 10 Gantt spans) to CSV files,
// and the run's accounting to DIR/BENCH_allfigs.json (per-section wall time,
// sims/sec, cache-hit rate) and DIR/manifest.json (the full reproducibility
// receipt: every task's config, seed, and cache status). Timing goes to
// stderr and the JSON artifacts only, so section outputs are byte-comparable
// across runs and -jobs settings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"hclocksync/internal/experiments"
	"hclocksync/internal/harness"
)

type runner struct {
	tiny   bool
	outdir string
	eng    *harness.Engine
	bench  []benchSection
}

// benchSection is one row of BENCH_allfigs.json.
type benchSection struct {
	Name        string  `json:"name"`
	WallSec     float64 `json:"wall_s"`
	Sims        int     `json:"sims"`
	SimsPerSec  float64 `json:"sims_per_sec"`
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	HitRate     float64 `json:"cache_hit_rate"`
}

func main() {
	scale := flag.String("scale", "default", "default or tiny")
	ablations := flag.Bool("ablations", false, "also run the ablation studies and extensions")
	outdir := flag.String("outdir", "", "also write per-section .txt/.csv artifacts, BENCH_allfigs.json, and manifest.json to this directory")
	jobs := flag.Int("jobs", runtime.NumCPU(), "simulations to run concurrently")
	cachedir := flag.String("cachedir", "", "serve repeated simulations from this result-cache directory")
	quiet := flag.Bool("quiet", false, "suppress progress and timing lines on stderr")
	flag.Parse()

	opts := harness.Options{Jobs: *jobs, CacheDir: *cachedir}
	if !*quiet {
		opts.Reporter = harness.NewProgressReporter(os.Stderr)
	}
	r := &runner{
		tiny:   *scale == "tiny",
		outdir: *outdir,
		eng:    harness.New(opts),
	}
	if r.outdir != "" {
		if err := os.MkdirAll(r.outdir, 0o755); err != nil {
			fail("outdir", err)
		}
	}
	quietly := *quiet
	start := time.Now() //synclint:wallclock -- wall-time telemetry for the manifest; never hashed

	r.section("table1", "Table I — machines", func(w io.Writer) error {
		experiments.Table1(w)
		return nil
	})

	var res2 *experiments.Fig2Result
	r.timed("fig2", quietly, func() (err error) {
		res2, err = experiments.RunFig2(r.eng, pick(r.tiny, experiments.TinyFig2Config, experiments.DefaultFig2Config))
		return err
	})
	r.section("fig2", "Fig. 2 — clock drift", func(w io.Writer) error {
		res2.Print(w)
		return nil
	})
	r.artifact("fig2_series.csv", func(w io.Writer) error {
		res2.PrintSeries(w)
		return nil
	})

	syncFigs := []struct {
		name, title string
		tiny, def   func() experiments.SyncAccuracyConfig
	}{
		{"fig3", "Fig. 3 — HCA/HCA2/HCA3/JK accuracy vs duration",
			experiments.TinyFig3Config, experiments.DefaultFig3Config},
		{"fig4", "Fig. 4 — HCA3 vs H2HCA, Jupiter",
			experiments.TinyFig4Config, experiments.DefaultFig4Config},
		{"fig5", "Fig. 5 — HCA3 vs H2HCA, Hydra",
			experiments.TinyFig5Config, experiments.DefaultFig5Config},
		{"fig6", "Fig. 6 — HCA3 vs H2HCA, Titan",
			experiments.TinyFig6Config, experiments.DefaultFig6Config},
	}
	for _, f := range syncFigs {
		var res *experiments.SyncAccuracyResult
		r.timed(f.name, quietly, func() (err error) {
			res, err = experiments.RunSyncAccuracy(r.eng, pick(r.tiny, f.tiny, f.def))
			return err
		})
		r.section(f.name, f.title, func(w io.Writer) error {
			res.Print(w)
			return nil
		})
	}

	var res7 *experiments.Fig7Result
	r.timed("fig7", quietly, func() (err error) {
		res7, err = experiments.RunFig7(r.eng, pick(r.tiny, experiments.TinyFig7Config, experiments.DefaultFig7Config))
		return err
	})
	r.section("fig7", "Fig. 7 — benchmark suite x barrier algorithm", func(w io.Writer) error {
		res7.Print(w)
		return nil
	})

	var res8 *experiments.Fig8Result
	r.timed("fig8", quietly, func() (err error) {
		res8, err = experiments.RunFig8(r.eng, pick(r.tiny, experiments.TinyFig8Config, experiments.DefaultFig8Config))
		return err
	})
	r.section("fig8", "Fig. 8 — barrier exit imbalance", func(w io.Writer) error {
		res8.Print(w)
		res8.PrintHistograms(w, 12)
		return nil
	})

	var res9 *experiments.Fig9Result
	r.timed("fig9", quietly, func() (err error) {
		res9, err = experiments.RunFig9(r.eng, pick(r.tiny, experiments.TinyFig9Config, experiments.DefaultFig9Config))
		return err
	})
	r.section("fig9", "Fig. 9 — OSU vs Round-Time across message sizes", func(w io.Writer) error {
		res9.Print(w)
		return nil
	})

	var res10 *experiments.Fig10Result
	r.timed("fig10", quietly, func() (err error) {
		res10, err = experiments.RunFig10(r.eng, pick(r.tiny, experiments.TinyFig10Config, experiments.DefaultFig10Config))
		return err
	})
	r.section("fig10", "Fig. 10 — AMG2013 trace Gantt", func(w io.Writer) error {
		res10.Print(w)
		return nil
	})
	r.artifact("fig10_spans.csv", res10.WriteCSV)

	if *ablations {
		r.runAblations(quietly)
		r.runExtensions(quietly)
	}

	if r.outdir != "" {
		r.writeBench(start)
		r.writeManifest(start)
	}
	fmt.Fprintf(os.Stderr, "allfigs: all experiments completed in %v\n",
		time.Since(start).Round(time.Millisecond)) //synclint:wallclock -- progress message on stderr only
}

func (r *runner) runAblations(quiet bool) {
	n, nfit, nexch, runs := 16, 60, 15, 3
	if r.tiny {
		n, nfit, nexch, runs = 8, 30, 10, 2
	}
	horizon := 200.0
	if r.tiny {
		horizon = 60
	}
	var a1, a2 *experiments.SyncAccuracyResult
	var w1, w0 *experiments.Fig2Result
	r.timed("ablations", quiet, func() (err error) {
		if a1, err = experiments.AblationJKOffsetAlg(r.eng, n, nfit, nexch, runs); err != nil {
			return err
		}
		if a2, err = experiments.AblationRecomputeIntercept(r.eng, n, nfit, nexch, runs); err != nil {
			return err
		}
		w1, w0, err = experiments.AblationWander(r.eng, 6, horizon)
		return err
	})
	r.section("ablations", "Ablations", func(w io.Writer) error {
		experiments.PrintAblation(w, "JK offset algorithm (paper III-C3 side-finding)", a1)
		experiments.PrintAblation(w, "recompute_intercept (Alg. 2)", a2)
		fmt.Fprintf(w, "Ablation: skew wander (drift linearity over %.0f s)\n", horizon)
		fmt.Fprintf(w, "  wander ON  (realistic clocks):     mean full-horizon R² = %.6f\n",
			experiments.MeanFullR2(w1))
		fmt.Fprintf(w, "  wander OFF (perfectly linear):     mean full-horizon R² = %.6f\n",
			experiments.MeanFullR2(w0))
		return nil
	})
}

func (r *runner) runExtensions(quiet bool) {
	var da *experiments.DriftAwareResult
	var wl *experiments.WindowLossResult
	var tc *experiments.TraceCorrectionResult
	var tu *experiments.TuningResult
	r.timed("extensions", quiet, func() (err error) {
		if da, err = experiments.RunDriftAware(r.eng, experiments.DefaultDriftAwareConfig()); err != nil {
			return err
		}
		if wl, err = experiments.RunWindowLoss(r.eng, experiments.DefaultWindowLossConfig()); err != nil {
			return err
		}
		if tc, err = experiments.RunTraceCorrection(r.eng, experiments.DefaultTraceCorrectionConfig()); err != nil {
			return err
		}
		tu, err = experiments.RunTuning(r.eng, experiments.DefaultTuningConfig())
		return err
	})
	r.section("extensions", "Extensions beyond the paper's figures", func(w io.Writer) error {
		da.Print(w)
		wl.Print(w)
		tc.Print(w)
		tu.Print(w)
		return nil
	})
}

// timed runs one section's simulations, recording wall time plus the cache
// accounting of every suite the engine completed inside it. Timing lines go
// to stderr so section outputs stay byte-comparable across runs.
func (r *runner) timed(name string, quiet bool, fn func() error) {
	before := len(r.eng.Manifests())
	start := time.Now() //synclint:wallclock -- per-section wall-time telemetry; never hashed
	if err := fn(); err != nil {
		fail(name, err)
	}
	sec := benchSection{Name: name, WallSec: time.Since(start).Seconds()} //synclint:wallclock -- wall-time telemetry; never hashed
	for _, m := range r.eng.Manifests()[before:] {
		sec.Sims += m.Sims
		sec.CacheHits += m.CacheHits
		sec.CacheMisses += m.CacheMisses
	}
	if sec.WallSec > 0 {
		sec.SimsPerSec = float64(sec.Sims) / sec.WallSec
	}
	if sec.Sims > 0 {
		sec.HitRate = float64(sec.CacheHits) / float64(sec.Sims)
	}
	r.bench = append(r.bench, sec)
	if !quiet {
		fmt.Fprintf(os.Stderr, "allfigs: %s: %.2fs wall, %d sims, %.1f sims/s, %d cached\n",
			name, sec.WallSec, sec.Sims, sec.SimsPerSec, sec.CacheHits)
	}
}

// writeBench emits BENCH_allfigs.json: the per-section timing table.
func (r *runner) writeBench(start time.Time) {
	total := struct {
		Tool     string         `json:"tool"`
		Version  string         `json:"version"`
		Jobs     int            `json:"jobs"`
		WallSec  float64        `json:"wall_s"`
		Sims     int            `json:"sims"`
		Hits     int            `json:"cache_hits"`
		HitRate  float64        `json:"cache_hit_rate"`
		Sections []benchSection `json:"sections"`
	}{
		Tool: "allfigs", Version: harness.CodeVersion(), Jobs: r.eng.Jobs(),
		WallSec: time.Since(start).Seconds(), Sections: r.bench, //synclint:wallclock -- wall-time telemetry; never hashed
	}
	for _, s := range r.bench {
		total.Sims += s.Sims
		total.Hits += s.CacheHits
	}
	if total.Sims > 0 {
		total.HitRate = float64(total.Hits) / float64(total.Sims)
	}
	raw, err := json.MarshalIndent(total, "", "  ")
	if err != nil {
		fail("BENCH_allfigs.json", err)
	}
	if err := os.WriteFile(filepath.Join(r.outdir, "BENCH_allfigs.json"), append(raw, '\n'), 0o644); err != nil {
		fail("BENCH_allfigs.json", err)
	}
}

// writeManifest emits manifest.json: the run's reproducibility receipt with
// the per-section wall-clock table attached.
func (r *runner) writeManifest(start time.Time) {
	m := struct {
		*harness.RunManifest
		Sections []benchSection `json:"sections"`
	}{
		RunManifest: harness.NewRunManifest("allfigs", r.eng, start, r.eng.Manifests()),
		Sections:    r.bench,
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fail("manifest.json", err)
	}
	if err := os.WriteFile(filepath.Join(r.outdir, "manifest.json"), append(raw, '\n'), 0o644); err != nil {
		fail("manifest.json", err)
	}
}

// section prints a titled block to stdout and, with -outdir, to name.txt.
func (r *runner) section(name, title string, emit func(io.Writer) error) {
	fmt.Printf("\n==================== %s ====================\n", title)
	if err := emit(os.Stdout); err != nil {
		fail(name, err)
	}
	if r.outdir != "" {
		r.artifact(name+".txt", emit)
	}
}

// artifact writes one file into -outdir (no-op when unset).
func (r *runner) artifact(name string, emit func(io.Writer) error) {
	if r.outdir == "" {
		return
	}
	f, err := os.Create(filepath.Join(r.outdir, name))
	if err != nil {
		fail(name, err)
	}
	defer f.Close()
	if err := emit(f); err != nil {
		fail(name, err)
	}
}

func pick[T any](tiny bool, tinyFn, defFn func() T) T {
	if tiny {
		return tinyFn()
	}
	return defFn()
}

func fail(name string, err error) {
	fmt.Fprintf(os.Stderr, "allfigs: %s: %v\n", name, err)
	os.Exit(1)
}
