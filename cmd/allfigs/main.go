// Command allfigs regenerates every table and figure of the paper in one
// run, printing each experiment's rows in sequence. This is the harness
// behind EXPERIMENTS.md.
//
// Usage:
//
//	allfigs [-scale default|tiny] [-ablations] [-outdir DIR]
//
// With -outdir, each section is additionally written to DIR/<name>.txt and
// the plottable series (Fig. 2 drift curves, Fig. 10 Gantt spans) to CSV
// files.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"hclocksync/internal/experiments"
)

type runner struct {
	tiny   bool
	outdir string
}

func main() {
	scale := flag.String("scale", "default", "default or tiny")
	ablations := flag.Bool("ablations", false, "also run the ablation studies and extensions")
	outdir := flag.String("outdir", "", "also write per-section .txt/.csv artifacts to this directory")
	flag.Parse()

	r := runner{tiny: *scale == "tiny", outdir: *outdir}
	if r.outdir != "" {
		if err := os.MkdirAll(r.outdir, 0o755); err != nil {
			fail("outdir", err)
		}
	}
	start := time.Now()

	r.section("table1", "Table I — machines", func(w io.Writer) error {
		experiments.Table1(w)
		return nil
	})

	cfg2 := pick(r.tiny, experiments.TinyFig2Config, experiments.DefaultFig2Config)
	res2, err := experiments.RunFig2(cfg2)
	if err != nil {
		fail("fig2", err)
	}
	r.section("fig2", "Fig. 2 — clock drift", func(w io.Writer) error {
		res2.Print(w)
		return nil
	})
	r.artifact("fig2_series.csv", func(w io.Writer) error {
		res2.PrintSeries(w)
		return nil
	})

	syncFigs := []struct {
		name, title string
		tiny, def   func() experiments.SyncAccuracyConfig
	}{
		{"fig3", "Fig. 3 — HCA/HCA2/HCA3/JK accuracy vs duration",
			experiments.TinyFig3Config, experiments.DefaultFig3Config},
		{"fig4", "Fig. 4 — HCA3 vs H2HCA, Jupiter",
			experiments.TinyFig4Config, experiments.DefaultFig4Config},
		{"fig5", "Fig. 5 — HCA3 vs H2HCA, Hydra",
			experiments.TinyFig5Config, experiments.DefaultFig5Config},
		{"fig6", "Fig. 6 — HCA3 vs H2HCA, Titan",
			experiments.TinyFig6Config, experiments.DefaultFig6Config},
	}
	for _, f := range syncFigs {
		cfg := pick(r.tiny, f.tiny, f.def)
		res, err := experiments.RunSyncAccuracy(cfg)
		if err != nil {
			fail(f.name, err)
		}
		r.section(f.name, f.title, func(w io.Writer) error {
			res.Print(w)
			return nil
		})
	}

	cfg7 := pick(r.tiny, experiments.TinyFig7Config, experiments.DefaultFig7Config)
	res7, err := experiments.RunFig7(cfg7)
	if err != nil {
		fail("fig7", err)
	}
	r.section("fig7", "Fig. 7 — benchmark suite x barrier algorithm", func(w io.Writer) error {
		res7.Print(w)
		return nil
	})

	cfg8 := pick(r.tiny, experiments.TinyFig8Config, experiments.DefaultFig8Config)
	res8, err := experiments.RunFig8(cfg8)
	if err != nil {
		fail("fig8", err)
	}
	r.section("fig8", "Fig. 8 — barrier exit imbalance", func(w io.Writer) error {
		res8.Print(w)
		res8.PrintHistograms(w, 12)
		return nil
	})

	cfg9 := pick(r.tiny, experiments.TinyFig9Config, experiments.DefaultFig9Config)
	res9, err := experiments.RunFig9(cfg9)
	if err != nil {
		fail("fig9", err)
	}
	r.section("fig9", "Fig. 9 — OSU vs Round-Time across message sizes", func(w io.Writer) error {
		res9.Print(w)
		return nil
	})

	cfg10 := pick(r.tiny, experiments.TinyFig10Config, experiments.DefaultFig10Config)
	res10, err := experiments.RunFig10(cfg10)
	if err != nil {
		fail("fig10", err)
	}
	r.section("fig10", "Fig. 10 — AMG2013 trace Gantt", func(w io.Writer) error {
		res10.Print(w)
		return nil
	})
	r.artifact("fig10_spans.csv", res10.WriteCSV)

	if *ablations {
		r.runAblations()
		r.runExtensions()
	}

	fmt.Printf("\nall experiments completed in %v\n", time.Since(start).Round(time.Millisecond))
}

func (r runner) runAblations() {
	n, nfit, nexch, runs := 16, 60, 15, 3
	if r.tiny {
		n, nfit, nexch, runs = 8, 30, 10, 2
	}
	a1, err := experiments.AblationJKOffsetAlg(n, nfit, nexch, runs)
	if err != nil {
		fail("ablation jk", err)
	}
	a2, err := experiments.AblationRecomputeIntercept(n, nfit, nexch, runs)
	if err != nil {
		fail("ablation recompute", err)
	}
	horizon := 200.0
	if r.tiny {
		horizon = 60
	}
	w1, w0, err := experiments.AblationWander(6, horizon)
	if err != nil {
		fail("ablation wander", err)
	}
	r.section("ablations", "Ablations", func(w io.Writer) error {
		experiments.PrintAblation(w, "JK offset algorithm (paper III-C3 side-finding)", a1)
		experiments.PrintAblation(w, "recompute_intercept (Alg. 2)", a2)
		fmt.Fprintf(w, "Ablation: skew wander (drift linearity over %.0f s)\n", horizon)
		fmt.Fprintf(w, "  wander ON  (realistic clocks):     mean full-horizon R² = %.6f\n",
			experiments.MeanFullR2(w1))
		fmt.Fprintf(w, "  wander OFF (perfectly linear):     mean full-horizon R² = %.6f\n",
			experiments.MeanFullR2(w0))
		return nil
	})
}

func (r runner) runExtensions() {
	da, err := experiments.RunDriftAware(experiments.DefaultDriftAwareConfig())
	if err != nil {
		fail("driftaware", err)
	}
	wl, err := experiments.RunWindowLoss(experiments.DefaultWindowLossConfig())
	if err != nil {
		fail("windowloss", err)
	}
	tc, err := experiments.RunTraceCorrection(experiments.DefaultTraceCorrectionConfig())
	if err != nil {
		fail("tracecorrection", err)
	}
	tu, err := experiments.RunTuning(experiments.DefaultTuningConfig())
	if err != nil {
		fail("tuning", err)
	}
	r.section("extensions", "Extensions beyond the paper's figures", func(w io.Writer) error {
		da.Print(w)
		wl.Print(w)
		tc.Print(w)
		tu.Print(w)
		return nil
	})
}

// section prints a titled block to stdout and, with -outdir, to name.txt.
func (r runner) section(name, title string, emit func(io.Writer) error) {
	fmt.Printf("\n==================== %s ====================\n", title)
	if err := emit(os.Stdout); err != nil {
		fail(name, err)
	}
	if r.outdir != "" {
		r.artifact(name+".txt", emit)
	}
}

// artifact writes one file into -outdir (no-op when unset).
func (r runner) artifact(name string, emit func(io.Writer) error) {
	if r.outdir == "" {
		return
	}
	f, err := os.Create(filepath.Join(r.outdir, name))
	if err != nil {
		fail(name, err)
	}
	defer f.Close()
	if err := emit(f); err != nil {
		fail(name, err)
	}
}

func pick[T any](tiny bool, tinyFn, defFn func() T) T {
	if tiny {
		return tinyFn()
	}
	return defFn()
}

func fail(name string, err error) {
	fmt.Fprintf(os.Stderr, "allfigs: %s: %v\n", name, err)
	os.Exit(1)
}
