// Command machines prints the modelled machine inventory (paper Table I).
//
// Usage:
//
//	machines
package main

import (
	"os"

	"hclocksync/internal/experiments"
)

func main() {
	experiments.Table1(os.Stdout)
}
