// Command tune runs the PGMPITuneLib-style case study behind the paper's
// motivation: measure all candidate MPI_Allreduce implementations under
// different measurement configurations (Round-Time vs OSU-style loops with
// different barriers) and report which candidate each configuration would
// install — demonstrating that barrier-based tuning can pick a different
// "best" algorithm than the unbiased Round-Time measurement.
//
// Usage:
//
//	tune [-procs 64] [-rep 30] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"hclocksync/internal/experiments"
)

func main() {
	cfg := experiments.DefaultTuningConfig()
	procs := flag.Int("procs", cfg.Job.NProcs, "number of ranks")
	rep := flag.Int("rep", cfg.NRep, "repetitions per candidate and size")
	seed := flag.Int64("seed", cfg.Job.Seed, "simulation seed")
	flag.Parse()

	cfg.Job.NProcs = *procs
	cfg.NRep = *rep
	cfg.Job.Seed = *seed
	res, err := experiments.RunTuning(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tune:", err)
		os.Exit(1)
	}
	res.Print(os.Stdout)
}
