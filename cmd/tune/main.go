// Command tune runs the PGMPITuneLib-style case study behind the paper's
// motivation: measure all candidate MPI_Allreduce implementations under
// different measurement configurations (Round-Time vs OSU-style loops with
// different barriers) and report which candidate each configuration would
// install — demonstrating that barrier-based tuning can pick a different
// "best" algorithm than the unbiased Round-Time measurement.
//
// Usage:
//
//	tune [-procs 64] [-rep 30] [-seed S] [-jobs N] [-cachedir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hclocksync/internal/experiments"
	"hclocksync/internal/harness"
)

func main() {
	cfg := experiments.DefaultTuningConfig()
	procs := flag.Int("procs", cfg.Job.NProcs, "number of ranks")
	rep := flag.Int("rep", cfg.NRep, "repetitions per candidate and size")
	seed := flag.Int64("seed", cfg.Job.Seed, "simulation seed")
	jobs := flag.Int("jobs", runtime.NumCPU(), "simulations to run concurrently")
	cachedir := flag.String("cachedir", "", "serve repeated simulations from this result-cache directory")
	flag.Parse()

	cfg.Job.NProcs = *procs
	cfg.NRep = *rep
	cfg.Job.Seed = *seed
	eng := harness.New(harness.Options{Jobs: *jobs, CacheDir: *cachedir})
	res, err := experiments.RunTuning(eng, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tune:", err)
		os.Exit(1)
	}
	res.Print(os.Stdout)
}
