// Command traceamg regenerates the tracing case study of the paper's
// Fig. 10: the AMG2013 proxy app is traced four ways — {global, local}
// clock × {clock_gettime, gettimeofday} — and the Gantt rows of one
// MPI_Allreduce iteration are reported.
//
// Usage:
//
//	traceamg [-iter 10] [-csv] [-scale default|tiny] [-seed S] [-jobs N] [-cachedir DIR]
//
// With -csv the normalized per-rank spans of every panel are emitted for
// external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hclocksync/internal/experiments"
	"hclocksync/internal/harness"
)

func main() {
	iter := flag.Int("iter", 10, "which Allreduce iteration to display")
	csv := flag.Bool("csv", false, "emit normalized spans as CSV")
	scale := flag.String("scale", "default", "default or tiny")
	seed := flag.Int64("seed", 0, "override the simulation seed")
	jobs := flag.Int("jobs", runtime.NumCPU(), "simulations to run concurrently")
	cachedir := flag.String("cachedir", "", "serve repeated simulations from this result-cache directory")
	flag.Parse()

	cfg := experiments.DefaultFig10Config()
	if *scale == "tiny" {
		cfg = experiments.TinyFig10Config()
	}
	cfg.Iteration = *iter
	if *seed != 0 {
		cfg.Job.Seed = *seed
	}
	eng := harness.New(harness.Options{Jobs: *jobs, CacheDir: *cachedir})
	res, err := experiments.RunFig10(eng, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceamg:", err)
		os.Exit(1)
	}
	if *csv {
		if err := res.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "traceamg:", err)
			os.Exit(1)
		}
		return
	}
	res.Print(os.Stdout)
}
