// Command driftexp regenerates the clock-drift experiment of the paper's
// Fig. 2: one rank per node measures its offset to rank 0 over a long
// horizon, demonstrating that drift is linear over ~10 s windows but not
// over hundreds of seconds.
//
// Usage:
//
//	driftexp [-duration 200] [-every 2] [-procs 10] [-seed 1] [-series]
//	         [-jobs N] [-cachedir DIR]
//
// With -series the raw (rank, t, offset) points are emitted as CSV for
// plotting Fig. 2a; otherwise per-rank fit summaries are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hclocksync/internal/experiments"
	"hclocksync/internal/harness"
)

func main() {
	cfg := experiments.DefaultFig2Config()
	duration := flag.Float64("duration", cfg.Duration, "observation horizon in seconds")
	every := flag.Float64("every", cfg.SampleEvery, "seconds between offset measurements")
	procs := flag.Int("procs", cfg.Job.NProcs, "ranks (one per node)")
	seed := flag.Int64("seed", cfg.Job.Seed, "simulation seed")
	series := flag.Bool("series", false, "emit raw CSV series instead of summaries")
	jobs := flag.Int("jobs", runtime.NumCPU(), "simulations to run concurrently")
	cachedir := flag.String("cachedir", "", "serve repeated simulations from this result-cache directory")
	flag.Parse()

	cfg.Duration = *duration
	cfg.SampleEvery = *every
	cfg.Job.NProcs = *procs
	cfg.Job.Seed = *seed
	eng := harness.New(harness.Options{Jobs: *jobs, CacheDir: *cachedir})
	res, err := experiments.RunFig2(eng, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "driftexp:", err)
		os.Exit(1)
	}
	if *series {
		res.PrintSeries(os.Stdout)
		return
	}
	res.Print(os.Stdout)
}
