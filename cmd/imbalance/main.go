// Command imbalance regenerates the barrier exit-imbalance experiment of
// the paper's Fig. 8: with a precise global clock, ranks enter MPI_Barrier
// simultaneously and record when each leaves; the skew between the first
// and the last exit is the barrier implementation's imbalance.
//
// Usage:
//
//	imbalance [-calls 500] [-runs 5] [-seed S] [-hist] [-jobs N] [-cachedir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hclocksync/internal/experiments"
	"hclocksync/internal/harness"
)

func main() {
	cfg := experiments.DefaultFig8Config()
	calls := flag.Int("calls", cfg.NCalls, "barrier calls per mpirun")
	runs := flag.Int("runs", cfg.NRuns, "mpiruns")
	seed := flag.Int64("seed", cfg.Job.Seed, "simulation seed")
	hist := flag.Bool("hist", false, "also print per-barrier ASCII histograms")
	jobs := flag.Int("jobs", runtime.NumCPU(), "simulations to run concurrently")
	cachedir := flag.String("cachedir", "", "serve repeated simulations from this result-cache directory")
	flag.Parse()

	cfg.NCalls = *calls
	cfg.NRuns = *runs
	cfg.Job.Seed = *seed
	eng := harness.New(harness.Options{Jobs: *jobs, CacheDir: *cachedir})
	res, err := experiments.RunFig8(eng, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imbalance:", err)
		os.Exit(1)
	}
	res.Print(os.Stdout)
	if *hist {
		res.PrintHistograms(os.Stdout, 12)
	}
}
