// Command imbalance regenerates the barrier exit-imbalance experiment of
// the paper's Fig. 8: with a precise global clock, ranks enter MPI_Barrier
// simultaneously and record when each leaves; the skew between the first
// and the last exit is the barrier implementation's imbalance.
//
// Usage:
//
//	imbalance [-calls 500] [-runs 5] [-seed S] [-hist]
package main

import (
	"flag"
	"fmt"
	"os"

	"hclocksync/internal/experiments"
)

func main() {
	cfg := experiments.DefaultFig8Config()
	calls := flag.Int("calls", cfg.NCalls, "barrier calls per mpirun")
	runs := flag.Int("runs", cfg.NRuns, "mpiruns")
	seed := flag.Int64("seed", cfg.Job.Seed, "simulation seed")
	hist := flag.Bool("hist", false, "also print per-barrier ASCII histograms")
	flag.Parse()

	cfg.NCalls = *calls
	cfg.NRuns = *runs
	cfg.Job.Seed = *seed
	res, err := experiments.RunFig8(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imbalance:", err)
		os.Exit(1)
	}
	res.Print(os.Stdout)
	if *hist {
		res.PrintHistograms(os.Stdout, 12)
	}
}
