// Roundtime: benchmark an 8-byte MPI_Allreduce three ways — the OSU-style
// barrier scheme, the SKaMPI-style window scheme, and the paper's
// Round-Time scheme — and see how the measurement method changes the
// reported latency.
//
// Run with:
//
//	go run ./examples/roundtime
package main

import (
	"fmt"
	"log"

	"hclocksync/internal/bench"
	"hclocksync/internal/clock"
	"hclocksync/internal/clocksync"
	"hclocksync/internal/cluster"
	"hclocksync/internal/mpi"
	"hclocksync/internal/stats"
)

func main() {
	spec := cluster.Jupiter()
	spec.Nodes, spec.CoresPerSocket = 16, 2 // 64 ranks

	err := mpi.Run(mpi.Config{Spec: spec, NProcs: 64, Seed: 11}, func(p *mpi.Proc) {
		comm := p.World()
		op := bench.AllreduceOp(8, mpi.AllreduceRecursiveDoubling)

		// One synchronization serves all global-clock schemes.
		g := clocksync.NewH2HCA(clocksync.HCA3{Params: clocksync.Params{
			NFitpoints: 150, Offset: clocksync.SKaMPIOffset{NExchanges: 20},
		}}).Sync(comm, clock.NewLocal(p))

		// 1. Barrier-based (OSU style): mean of local durations.
		osu := bench.RunSuite(comm, bench.SuiteOSU, op, bench.SuiteConfig{
			NRep: 50, Barrier: mpi.BarrierDissemination,
		})

		// 2. Window-based (SKaMPI style): fixed windows on the global
		// clock; count the casualties of a too-narrow window.
		window := bench.MeasureWindowScheme(comm, op, g, 50, 200e-6)
		gathered := bench.GatherSamples(comm, window)

		// 3. Round-Time (the paper's scheme): a fixed time slice, as many
		// valid repetitions as fit, no barrier anywhere.
		rtSamples := bench.MeasureRoundTime(comm, op, g, bench.RoundTimeConfig{
			MaxTimeSlice: 20e-3,
		})
		rt := bench.GatherRoundTime(comm, rtSamples)

		if p.Rank() == 0 {
			fmt.Printf("MPI_Allreduce, 8 B, %d ranks\n\n", comm.Size())
			fmt.Printf("OSU-style barrier scheme:   %8.3f us (mean of local durations)\n", osu*1e6)

			valid, invalid := 0, 0
			var durs []float64
			for i := range gathered[0] {
				ok := true
				var maxEnd, start float64
				for r := range gathered {
					s := gathered[r][i]
					ok = ok && s.Valid
					if r == 0 || s.Start < start {
						start = s.Start
					}
					if r == 0 || s.End > maxEnd {
						maxEnd = s.End
					}
				}
				if ok {
					valid++
					durs = append(durs, maxEnd-start)
				} else {
					invalid++
				}
			}
			fmt.Printf("window scheme:              %8.3f us (median; %d valid, %d invalid reps)\n",
				stats.Median(durs)*1e6, valid, invalid)

			lat := bench.GlobalLatencies(rt)
			fmt.Printf("Round-Time scheme:          %8.3f us (median of %d reps in a 20 ms slice)\n",
				stats.Median(lat)*1e6, len(lat))
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
