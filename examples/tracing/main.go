// Tracing: trace the AMG2013 proxy application with a raw local clock and
// with a synchronized global clock, then print the Gantt rows of one
// MPI_Allreduce iteration — the paper's Fig. 10 in miniature.
//
// Run with:
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"

	"hclocksync/internal/amg"
	"hclocksync/internal/clock"
	"hclocksync/internal/clocksync"
	"hclocksync/internal/cluster"
	"hclocksync/internal/mpi"
	"hclocksync/internal/trace"
)

func traced(global bool) []trace.Span {
	spec := cluster.Jupiter()
	spec.Nodes, spec.SocketsPerNode, spec.CoresPerSocket = 6, 2, 2 // 24 ranks

	var spans []trace.Span
	err := mpi.Run(mpi.Config{Spec: spec, NProcs: 24, Seed: 5}, func(p *mpi.Proc) {
		var clk clock.Clock = clock.NewLocal(p)
		if global {
			clk = clocksync.NewH2HCA(clocksync.HCA3{Params: clocksync.Params{
				NFitpoints: 100, Offset: clocksync.SKaMPIOffset{NExchanges: 15},
			}}).Sync(p.World(), clk)
		}
		tr := trace.New(p, clk)
		amg.Run(p, amg.Config{Iters: 12, Compute: 25e-6, Imbalance: 0.4, NoiseSigma: 2e-6}, tr)
		got := trace.Gather(p.World(), amg.AllreduceRegion, tr.Filter(amg.AllreduceRegion, 10))
		if p.Rank() == 0 {
			spans = trace.Normalize(got)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return spans
}

func main() {
	for _, global := range []bool{false, true} {
		name := "local clock (clock_gettime)"
		if global {
			name = "global clock (H2HCA)"
		}
		spans := traced(global)
		fmt.Printf("--- 10th MPI_Allreduce traced with %s ---\n", name)
		if err := trace.WriteCSV(os.Stdout, spans[:4]); err != nil {
			log.Fatal(err)
		}
		var max float64
		for _, s := range spans {
			if s.Start > max {
				max = s.Start
			}
		}
		fmt.Printf("(start-time spread across %d ranks: %.3f us)\n\n", len(spans), max*1e6)
	}
	fmt.Println("With local clocks the spread is dominated by per-node clock offsets;")
	fmt.Println("with the global clock it reflects the application's real imbalance.")
}
