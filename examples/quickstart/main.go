// Quickstart: synchronize clocks on a simulated cluster with HCA3 and see
// how precise the logical global clock is — right after synchronization and
// ten seconds later.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hclocksync/internal/clock"
	"hclocksync/internal/clocksync"
	"hclocksync/internal/cluster"
	"hclocksync/internal/mpi"
)

func main() {
	// A 16-node slice of the Jupiter model, 4 ranks per node.
	spec := cluster.Jupiter()
	spec.Nodes, spec.CoresPerSocket = 16, 2

	// HCA3 with the paper's parameter naming: 150 fit points, each found
	// with 20 SKaMPI-Offset ping-pongs, re-anchoring the intercept.
	alg := clocksync.HCA3{Params: clocksync.Params{
		NFitpoints:         150,
		Offset:             clocksync.SKaMPIOffset{NExchanges: 20},
		RecomputeIntercept: true,
	}}

	err := mpi.Run(mpi.Config{Spec: spec, NProcs: 64, Seed: 42}, func(p *mpi.Proc) {
		// Every rank calls Sync collectively, like an MPI program would.
		start := p.TrueNow()
		g := alg.Sync(p.World(), clock.NewLocal(p))
		dur := p.World().AllreduceF64(p.TrueNow()-start, mpi.OpMax)

		// Rank 0 measures the residual offset to every other rank's
		// global clock, waits 10 s, and measures again (paper Alg. 6).
		samples := clocksync.CheckAccuracy(p.World(), g, clocksync.CheckConfig{
			Offset:   clocksync.SKaMPIOffset{NExchanges: 10},
			WaitTime: 10,
		})
		if p.Rank() == 0 {
			at0, at10 := clocksync.MaxAbsOffsets(samples)
			fmt.Printf("algorithm:          %s\n", alg.Name())
			fmt.Printf("ranks:              %d\n", p.Size())
			fmt.Printf("sync duration:      %.3f s\n", dur)
			fmt.Printf("max offset at 0 s:  %.3f us\n", at0*1e6)
			fmt.Printf("max offset at 10 s: %.3f us\n", at10*1e6)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
