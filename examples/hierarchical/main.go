// Hierarchical: compare flat HCA3 against the paper's hierarchical schemes
// H2HCA (HCA3 between nodes + clock propagation inside each node) and
// H3HCA (an extra per-socket level, for machines whose sockets have
// distinct time sources).
//
// Run with:
//
//	go run ./examples/hierarchical
package main

import (
	"fmt"
	"log"

	"hclocksync/internal/clock"
	"hclocksync/internal/clocksync"
	"hclocksync/internal/cluster"
	"hclocksync/internal/mpi"
)

func measure(spec cluster.MachineSpec, nprocs int, alg clocksync.Algorithm) (dur, at0, at10 float64) {
	err := mpi.Run(mpi.Config{Spec: spec, NProcs: nprocs, Seed: 7}, func(p *mpi.Proc) {
		start := p.TrueNow()
		g := alg.Sync(p.World(), clock.NewLocal(p))
		d := p.World().AllreduceF64(p.TrueNow()-start, mpi.OpMax)
		samples := clocksync.CheckAccuracy(p.World(), g, clocksync.CheckConfig{
			Offset:   clocksync.SKaMPIOffset{NExchanges: 10},
			WaitTime: 10,
		})
		if p.Rank() == 0 {
			dur = d
			at0, at10 = clocksync.MaxAbsOffsets(samples)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return dur, at0, at10
}

func main() {
	params := clocksync.Params{
		NFitpoints: 120,
		Offset:     clocksync.SKaMPIOffset{NExchanges: 15},
	}

	// Node-level shared clocks (the common case): H2HCA applies.
	spec := cluster.Jupiter()
	spec.Nodes, spec.CoresPerSocket = 12, 4 // 12 nodes x 8 cores = 96 ranks
	fmt.Printf("machine: %s-like, %d nodes x %d cores, node-level time source\n\n",
		spec.Name, spec.Nodes, spec.CoresPerNode())
	fmt.Printf("%-60s %10s %12s %12s\n", "algorithm", "dur[s]", "off@0s[us]", "off@10s[us]")
	for _, alg := range []clocksync.Algorithm{
		clocksync.HCA3{Params: params},
		clocksync.NewH2HCA(clocksync.HCA3{Params: params}),
	} {
		dur, a0, a10 := measure(spec, 96, alg)
		fmt.Printf("%-60s %10.4f %12.3f %12.3f\n", alg.Name(), dur, a0*1e6, a10*1e6)
	}

	// Socket-level time sources: ClockPropSync would be incorrect across
	// sockets, so H3HCA inserts a measuring level per socket.
	spec.ClockDomain = cluster.DomainSocket
	fmt.Printf("\nsame machine with per-socket time sources (H3HCA territory)\n")
	h3 := clocksync.NewH3HCA(clocksync.HCA3{Params: params}, clocksync.HCA3{Params: params})
	dur, a0, a10 := measure(spec, 96, h3)
	fmt.Printf("%-60s %10.4f %12.3f %12.3f\n", h3.Name(), dur, a0*1e6, a10*1e6)
}
